// MonitorTable: the process-wide side table behind inflated lock words
// (DESIGN.md §13).
//
// A LockWord carries the whole monitor until something needs fat-monitor
// machinery — contention (the entry queue), Object.wait (the wait set), or
// thin-recursion overflow.  At that point the word *inflates*: the table
// hands out an index-stable, pooled slot holding a real MonitorBase built
// by the caller's factory (BlockingMonitor for baselines,
// core::RevocableMonitor for the engine), and the word becomes
// {slot, generation}.
//
// Deflation is the reverse edge and the reason steady-state monitor memory
// is O(contended monitors): a slot whose monitor is provably *quiescent* is
// destroyed and its word returns to thin/biased/free.  The quiescence
// predicate is deliberately shared with the engine (set_deflate_veto): the
// base check — no owner, no reservation, empty entry/wait queues, nobody in
// transit through acquire()/wait() — covers the monitor protocol, and the
// engine's veto adds "no live or lazy frame references this monitor", so
// revocation semantics (oldest-frame targeting, pin closure, §5.6 barging)
// are never consulted against a monitor that could disappear under them.
//
// Deflation NEVER runs inside the commit/abort/release forbidden regions:
// the opportunistic pass sits in ThinLock::release strictly after the inner
// MonitorBase::release() returns, and engine-owned slots (whose releases
// all happen inside Engine::commit_frame/abort_frame) deflate only through
// an explicit scavenge().  See DESIGN.md §13 for why.
//
// Generation tags make stale words safe without back-pointers from words to
// owners: every slot release bumps the slot's generation, so a word that
// outlives its monitor (object outliving an engine, a scavenged slot being
// recycled) simply stops matching and reads as free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitor/lock_word.hpp"
#include "monitor/monitor.hpp"
#include "support/annotations.hpp"

namespace rvk::monitor {

// Why a word inflated; recorded per-table and (for ThinLock) per-lock.
enum class InflationCause : std::uint8_t {
  kContention,  // a second thread hit a thin-held word
  kOverflow,    // thin recursion passed LockWord::kMaxCount
  kWait,        // Object.wait needs the wait set even uncontended
  kObjectSync,  // engine monitor_of(): object's first synchronized
};

struct MonitorTableStats {
  std::uint64_t inflations = 0;
  std::uint64_t deflations = 0;      // slots returned by quiescence checks
  std::uint64_t re_inflations = 0;   // inflations that reused a scavenged slot
  std::uint64_t inflation_by_contention = 0;
  std::uint64_t inflation_by_overflow = 0;
  std::uint64_t inflation_by_wait = 0;
  std::uint64_t inflation_by_sync = 0;
  std::uint64_t scavenge_passes = 0;
  std::uint64_t live_high_water = 0;  // max simultaneously inflated slots
};

class MonitorTable {
 public:
  // Builds the fat monitor for an inflating word.  Must not retain the
  // name beyond construction.
  using Factory =
      std::function<std::unique_ptr<MonitorBase>(std::string name)>;

  MonitorTable() = default;
  ~MonitorTable();

  MonitorTable(const MonitorTable&) = delete;
  MonitorTable& operator=(const MonitorTable&) = delete;

  // The process-wide table every lock word indexes into.  (Per-process like
  // the engine's barrier hooks; a second table would need per-word table
  // identity, which the encoding deliberately does not spend bits on.)
  static MonitorTable& global();

  // Inflates `word`: allocates a slot (reusing a scavenged one when
  // available), builds the monitor via `factory` (default: a
  // BlockingMonitor), and rewrites `word` to {slot, generation}.  A
  // thin-held word transfers its ownership + recursion onto the fat monitor
  // (adopt_owner); biased/free words inflate unowned.  `owner_tag`
  // identifies the slot's creator for release_slots_owned_by (the engine
  // passes itself; baselines pass nullptr).
  RVK_MAY_ALLOC MonitorBase& inflate(LockWord& word, std::string name,
                                     InflationCause cause,
                                     const Factory& factory = {},
                                     void* owner_tag = nullptr);

  // The monitor behind an inflated word, or nullptr if the word is stale
  // (slot deflated/recycled since) or not inflated at all.
  MonitorBase* monitor_at(const LockWord& word) const;

  // The base quiescence predicate: no owner, no reservation, empty entry
  // and wait queues, and nobody in transit through acquire()/wait() (a
  // woken-but-not-yet-rescheduled thread still holds a monitor reference —
  // deflating under it would be a use-after-free).
  static bool quiescent(const MonitorBase& m);

  // Engine veto: an extra predicate ANDed into deflatable().  Returns true
  // to allow deflation.  An engine installs "no live or lazy frame
  // references m" keyed by its owner tag (the same tag its slots carry), so
  // under sharding (DESIGN.md §16) each shard's engine vetoes exactly its
  // own slots and never has its private frame state walked from another
  // shard.  The untagged overload is the global fallback consulted for
  // every slot (tests, baselines); cleared with an empty function.
  using DeflateVeto = std::function<bool(const MonitorBase&)>;
  void set_deflate_veto(DeflateVeto allow) {
    auto lk = lock();
    deflate_veto_ = std::move(allow);
  }
  void set_deflate_veto(void* tag, DeflateVeto allow);

  // Deflation permission for a monitor created under `owner_tag`: the base
  // quiescence predicate, the global veto, and the tag's veto.
  bool deflatable(const MonitorBase& m, const void* owner_tag = nullptr) const;

  // Multi-shard switch (flipped by the first engine that binds to a multi-
  // shard DomainSet, before any shard thread runs): guards the slot pool
  // with a mutex.  Single-shard runs never take it — the lookup fast path
  // stays one branch.
  // Relaxed is enough: a shard only touches the table after its own
  // engine's constructor flipped this in the same thread's program order.
  void set_concurrent(bool on) {
    concurrent_.store(on, std::memory_order_relaxed);
  }
  bool concurrent() const {
    return concurrent_.load(std::memory_order_relaxed);
  }

  // Release-time opportunistic deflation: if `word` is inflated, its slot
  // live, and its monitor deflatable, destroys the monitor and rewrites
  // `word` to `after` (callers that know the releasing thread pass
  // LockWord::biased(id) so the next re-acquire is the one-compare fast
  // path; scavenge uses free).  Returns true iff it deflated.
  // Never call from a commit/abort/release forbidden region: destroying the
  // monitor frees memory and the veto walks engine state.
  bool try_deflate(LockWord& word, LockWord after = LockWord());

  // Sweeps live slots, deflating the quiescent ones (stale-detached slots
  // included).  Returns the number of slots deflated.  With the default
  // nullptr tag every slot is considered (the classic whole-table sweep);
  // a non-null tag restricts the sweep to that creator's slots — under
  // kOsThreads sharding a shard may only scavenge its own monitors, since
  // sweeping a peer's would run that peer's veto against engine state the
  // peer is concurrently mutating.
  std::size_t scavenge(const void* tag = nullptr);

  // Word-holder teardown: quiesce-or-detach (see release_inflated_slot in
  // lock_word.hpp, which forwards here on the global table).
  void release_slot(LockWord& word) noexcept;

  // Destroys every slot created with `owner_tag`, clearing surviving words
  // through the back-links.  Engine teardown: its RevocableMonitors
  // reference the dying engine and cannot outlive it; the scheduler is
  // drained by then, so unconditional destruction is sound.
  void release_slots_owned_by(void* tag);

  std::size_t live_slots() const { return live_; }
  std::size_t capacity() const { return slots_.size(); }
  // Side-table bytes attributable to slot bookkeeping (monitor objects
  // themselves are priced by the caller — the table cannot know concrete
  // monitor sizes).
  std::size_t slot_bytes() const;
  const MonitorTableStats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  struct Slot {
    std::unique_ptr<MonitorBase> monitor;  // null when free
    LockWord* word = nullptr;   // back-link for sweeps; null when detached
    void* owner_tag = nullptr;  // creator identity (engine teardown)
    std::uint32_t generation = 1;      // bumped on release → stale words
    std::uint32_t next_free = kNoFree;
    bool ever_used = false;  // re_inflation accounting
  };

  Slot* slot_of(const LockWord& word);
  const Slot* slot_of(const LockWord& word) const;
  // Destroys the slot's monitor, bumps the generation, free-lists the
  // index.  Does NOT touch the word — callers own that.
  void destroy_slot(std::uint32_t index);

  // Conditional pool lock: a real unique_lock in concurrent (multi-shard)
  // mode, an unowned one otherwise.
  std::unique_lock<std::mutex> lock() const {
    return concurrent() ? std::unique_lock<std::mutex>(mu_)
                        : std::unique_lock<std::mutex>();
  }
  bool deflatable_locked(const MonitorBase& m, const void* owner_tag) const;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::size_t live_ = 0;
  DeflateVeto deflate_veto_;
  std::unordered_map<const void*, DeflateVeto> tag_vetoes_;
  MonitorTableStats stats_;
  std::atomic<bool> concurrent_{false};
  mutable std::mutex mu_;
};

}  // namespace rvk::monitor
