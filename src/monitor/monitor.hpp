// Monitors (Java-style: mutual exclusion + wait sets), built on the green-
// thread scheduler.
//
// MonitorBase provides the mechanics every variant shares:
//  * recursive ownership ("a thread holding a monitor may enter another
//    synchronized section guarded by the same … monitor", §2);
//  * a deposited owner priority in the monitor header ("a thread acquiring a
//    monitor deposits its priority in the header of the monitor object",
//    §4) — the revocation engine compares against the *deposited* value, so
//    later inheritance boosts do not mask an inversion;
//  * prioritized entry queues (§4: "When a thread releases a monitor,
//    another thread is scheduled from the queue" in priority order).  An
//    ordinary release wakes the best waiter but leaves the monitor free
//    until that waiter runs — an arriving thread may *barge* in first,
//    exactly like Jikes RVM thin locks.  Only a release performed by a
//    rollback reserves the monitor for the best waiter (§4: "After the
//    low-priority thread rolls back its changes and releases the monitor,
//    the high-priority thread acquires control of the synchronized
//    section") — otherwise the revoked victim, which is already running,
//    would simply barge back in and undo the revocation's point.  A
//    reservation can still be displaced by a strictly higher-priority
//    arrival;
//  * wait/notify/notifyAll with Java semantics (full release, FIFO-within-
//    priority wait sets, spurious wakeups permitted — the paper relies on
//    that permission to make notify revocable, §2.2).
//
// Concrete variants:
//  * BlockingMonitor   — the paper's "unmodified VM" reference behaviour;
//  * PriorityInheritanceMonitor / PriorityCeilingMonitor (own headers) —
//    the classical avoidance protocols, for the baseline ablations;
//  * core::RevocableMonitor — the paper's contribution, layered on the same
//    base in src/core/.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "rt/scheduler.hpp"

namespace rvk::monitor {

struct MonitorStats {
  std::uint64_t acquires = 0;    // acquire() calls (including recursive)
  std::uint64_t contended = 0;   // acquires that had to block at least once
  std::uint64_t handoffs = 0;    // release-time wakeups of the best waiter
  std::uint64_t reservations = 0;  // releases that granted a reservation
  std::uint64_t steals = 0;      // reservations displaced by higher priority
  std::uint64_t waits = 0;
  std::uint64_t notifies = 0;
  // Abortable-acquisition counters (DESIGN.md §14).
  std::uint64_t aborts = 0;    // try_enter gave up (timeouts + cancels)
  std::uint64_t timeouts = 0;  // ... because the deadline expired
  std::uint64_t cancels = 0;   // ... because cancellation was requested
  // Biased-entry counters (DESIGN.md §11; RevocableMonitor only — always
  // zero for the baseline monitors).
  std::uint64_t bias_grants = 0;       // acquires served by the bias predicate
  std::uint64_t bias_revocations = 0;  // biases cleared by a second thread
};

class MonitorBase {
 public:
  explicit MonitorBase(std::string name) : name_(std::move(name)) {}
  virtual ~MonitorBase() = default;

  MonitorBase(const MonitorBase&) = delete;
  MonitorBase& operator=(const MonitorBase&) = delete;

  // Acquires the monitor, blocking as needed.  Recursive acquisition by the
  // owner succeeds immediately.
  RVK_MAY_YIELD RVK_MAY_BLOCK RVK_MAY_ALLOC virtual void acquire();

  // Abortable acquisition (DESIGN.md §14; CQS-style tryLock(timeout)).
  // Attempts to acquire within `ticks` virtual ticks from now; returns true
  // on acquisition, false if the deadline expired or cancellation was
  // requested (MonitorBase::cancel) before the monitor was taken.  `ticks`
  // of 0 is a pure tryLock: one attempt, never blocks.  Recursive
  // acquisition by the owner always succeeds immediately (no timer).
  // Timeouts ride the scheduler's deadline min-heap; a pending cancellation
  // fails the call before any acquisition attempt.  On a false return the
  // thread holds nothing: a reservation granted to it was already returned
  // (handed off to the next-best waiter) and any wakeup it may have
  // consumed is re-forwarded, so no waiter is lost and no reservation
  // leaks.
  RVK_MAY_YIELD RVK_MAY_BLOCK RVK_MAY_ALLOC virtual bool try_enter(
      std::uint64_t ticks);

  // Requests cancellation of `t`'s abortable waits.  One atomic step (green-
  // thread atomicity, enforced as a forbidden region): if a monitor is
  // currently reserved for `t`, the reservation is surrendered and re-handed
  // to that monitor's next-best waiter — cancellation wins over the grant —
  // then the flag is posted and `t` is interrupted out of any park.  A
  // thread inside plain acquire()/wait() is woken spuriously but does not
  // abort (Java fidelity: only try_enter observes the flag).  Idempotent;
  // callable from any thread, including `t` itself.
  // NO_YIELD: the surrender/re-handoff must be invisible as an intermediate
  // state — a concurrently-scheduled thread must see either the old
  // reservation or the completed re-handoff, never a reservation-less gap.
  RVK_NO_YIELD static void cancel(rt::VThread* t);

  // Clears a previously-posted cancellation request so `t`'s later
  // abortable waits proceed normally.
  static void clear_cancel(rt::VThread* t) { t->cancel_requested = false; }

  // Releases one level of ownership; frees the monitor (waking the best
  // waiter) when the recursion count reaches zero.  Arrivals may barge in
  // before the woken waiter runs.
  // NO_YIELD: the entire release sequence runs inside a forbidden region —
  // §3.1.2 requires undo-then-release to be one indivisible step.
  RVK_NO_YIELD virtual void release();

  // Like release(), but reserves the monitor for the best waiter: only a
  // strictly higher-priority arrival may take it first.  Used by rollback
  // unwinding so the preempting thread — not the revoked victim retrying —
  // enters next.
  RVK_NO_YIELD void release_reserving();

  // Java Object.wait(): fully releases the monitor (all recursion levels),
  // parks on the wait set until notified (spurious wakeups permitted), then
  // reacquires to the saved recursion depth.
  RVK_MAY_YIELD RVK_MAY_BLOCK RVK_MAY_ALLOC void wait();

  // Java Object.wait(timeout): as wait(), but gives up after `ticks`
  // virtual ticks.  Returns true if notified, false on timeout; the monitor
  // is reacquired either way.
  RVK_MAY_YIELD RVK_MAY_BLOCK RVK_MAY_ALLOC bool wait_for(
      std::uint64_t ticks);

  // Java Object.notify()/notifyAll(): moves waiter(s) to contend for the
  // monitor.  Caller must hold the monitor.
  void notify_one();
  void notify_all();

  // Runtime-internal: transfers ownership bookkeeping to this monitor
  // during thin-lock inflation — the thread already logically owns the
  // thin lock, so no acquisition protocol runs.  The monitor must be free.
  void adopt_owner(rt::VThread* t, int recursion);

  // ---- Introspection ----
  const std::string& name() const { return name_; }
  rt::VThread* owner() const { return owner_; }
  int recursion() const { return recursion_; }
  // Priority the owner deposited at acquisition (0 when free).
  int deposited_priority() const { return owner_priority_; }
  bool held_by(const rt::VThread* t) const { return owner_ == t; }
  bool held_by_current() const { return owner_ == rt::current_vthread(); }
  // Waiter the monitor is currently reserved for (nullptr when none).  Only
  // rollback releases reserve (CLAUDE.md invariant); the exploration
  // harness checks per-step that ordinary releases left this clear.
  rt::VThread* reserved() const { return reserved_; }
  const MonitorStats& stats() const { return stats_; }
  const rt::WaitQueue& entry_queue() const { return entry_queue_; }
  const rt::WaitQueue& wait_set() const { return wait_set_; }
  // Threads currently inside acquire()'s contended loop or a wait() window.
  // A woken waiter that has not yet been rescheduled sits in NO queue while
  // still holding a reference to this monitor — this counter is what lets
  // the deflation quiescence predicate (MonitorTable::quiescent, DESIGN.md
  // §13) see it.
  int in_transit() const { return transit_; }

 protected:
  // Marks the enclosing scope as in-transit through this monitor (bumps
  // transit_, RAII-decrements on every exit path — RollbackException unwinds
  // out of RevocableMonitor::acquire through it).  Scopes: the contended
  // acquire loop and the whole of wait()/wait_for().
  class TransitGuard {
   public:
    explicit TransitGuard(MonitorBase& m) : m_(m) { ++m_.transit_; }
    ~TransitGuard() { --m_.transit_; }
    TransitGuard(const TransitGuard&) = delete;
    TransitGuard& operator=(const TransitGuard&) = delete;

   private:
    MonitorBase& m_;
  };

  // Attempts to take the free monitor, honouring reservations.  Deposits the
  // taker's priority on success.
  bool try_take(rt::VThread* t);

  // Sole writer of reserved_: keeps the VThread::reserved_in back-link (the
  // O(1) map cancellation uses to find the reserving monitor) in lockstep.
  // Every reservation grant, consumption, steal and surrender goes through
  // here.
  RVK_NO_YIELD void set_reserved(rt::VThread* w);

  // Unwinds a contender that gives up (timeout or cancellation) without
  // acquiring.  Returns a reservation held for `t` (re-handing the monitor
  // to the next-best waiter) and re-forwards a wakeup `t` may have consumed
  // while the monitor is free, so abandoning never strands a waiter.  Bumps
  // the abort counters; `waited_ticks` feeds the obs abandon-latency
  // histogram.
  // NO_YIELD: like release, the give-up must be one indivisible step — a
  // half-returned reservation would be a barging window §5.6 does not allow.
  RVK_NO_YIELD void abandon_acquire(rt::VThread* t, bool cancelled,
                                    std::uint64_t waited_ticks);

  // Scopes VThread::abortable_wait over try_enter's contended loop (RAII so
  // a RollbackException unwinding out of RevocableMonitor::try_enter clears
  // it).  The flag is what narrows the "never cancelled AND reserved"
  // invariant to abortable waiters.
  class AbortableScope {
   public:
    explicit AbortableScope(rt::VThread* t) : t_(t) {
      t_->abortable_wait = true;
    }
    ~AbortableScope() { t_->abortable_wait = false; }
    AbortableScope(const AbortableScope&) = delete;
    AbortableScope& operator=(const AbortableScope&) = delete;

   private:
    rt::VThread* t_;
  };

  // Pops the best entry-queue waiter and makes it runnable; if `reserve`,
  // additionally reserves the monitor for it.  Called with the monitor free.
  RVK_NO_YIELD void handoff(bool reserve);

  // Shared body of release()/release_reserving().
  RVK_NO_YIELD void do_release(bool reserve);

  // Priority standing between waiter `t` and this monitor (deposited owner
  // priority, else a blocking reservation's, else t's own) — what the obs
  // layer compares against to spot an inversion forming.
  int blocking_priority(const rt::VThread* t) const;

  // Subclass hooks (priority protocols, revocation engine).
  virtual void on_block(rt::VThread* t);      // about to park on entry queue
  virtual void on_wake(rt::VThread* t);       // returned from parking
  virtual void on_acquired(rt::VThread* t);   // took ownership (non-recursive)
  virtual void on_released(rt::VThread* t);   // dropped ownership fully
  virtual void on_wait_release(rt::VThread* t);  // wait() releasing

  std::string name_;
  rt::VThread* owner_ = nullptr;
  rt::VThread* reserved_ = nullptr;  // woken waiter the monitor is held for
  int recursion_ = 0;
  int owner_priority_ = 0;
  int transit_ = 0;  // see in_transit()
  rt::WaitQueue entry_queue_;
  rt::WaitQueue wait_set_;
  MonitorStats stats_;
};

// The paper's reference: a plain blocking monitor with prioritized queues
// and no remedy for priority inversion ("when a high-priority thread wants
// to acquire a lock already held by a low-priority thread, it waits until
// the low-priority thread exits the synchronized section", §4.1).
class BlockingMonitor final : public MonitorBase {
 public:
  explicit BlockingMonitor(std::string name) : MonitorBase(std::move(name)) {}
};

// Cancellation handle for one thread's abortable waits (DESIGN.md §14).
// A thin, copyable wrapper over MonitorBase::cancel: request() aborts the
// target's in-progress and future try_enter calls until clear().  The
// token does not own the thread; it must not outlive the scheduler run.
class CancelToken {
 public:
  explicit CancelToken(rt::VThread* t) : t_(t) {}

  // Posts the cancellation (surrendering any reservation held for the
  // target and interrupting it out of a park).  Safe to call repeatedly.
  RVK_NO_YIELD void request() const { MonitorBase::cancel(t_); }
  bool requested() const { return t_->cancel_requested; }
  void clear() const { MonitorBase::clear_cancel(t_); }
  rt::VThread* target() const { return t_; }

 private:
  rt::VThread* t_;
};

}  // namespace rvk::monitor
