#include "pthreadrt/revocable_mutex.hpp"

#include <pthread.h>
#include <sched.h>

namespace rvk::pthreadrt {

namespace detail {
thread_local std::vector<Section*> tl_sections;
}  // namespace detail

// ---------------------------------------------------------------------------
// Section

void Section::check_owner(RevocableMutex& owner) const {
  RVK_CHECK_MSG(&owner == &mutex_,
                "TxCell accessed from a section of a different mutex");
  RVK_CHECK_MSG(mutex_.owner_ == std::this_thread::get_id(),
                "TxCell access outside the owning section");
}

void Section::safepoint() {
  if (!mutex_.revoke_requested_.load(std::memory_order_relaxed)) return;
  if (nonrevocable_) {
    // Pinned after the request: refuse it under the lock so the requester's
    // bookkeeping stays consistent.
    std::lock_guard<std::mutex> lk(mutex_.m_);
    mutex_.revoke_requested_.store(false, std::memory_order_relaxed);
    ++mutex_.stats_.denied_nonrevocable;
    return;
  }
  throw SectionRevoked(&mutex_);
}

void Section::set_nonrevocable() {
  if (nonrevocable_) return;
  std::lock_guard<std::mutex> lk(mutex_.m_);
  nonrevocable_ = true;
  if (mutex_.revoke_requested_.load(std::memory_order_relaxed)) {
    mutex_.revoke_requested_.store(false, std::memory_order_relaxed);
    ++mutex_.stats_.denied_nonrevocable;
  }
}

void Section::rollback() {
  for (std::size_t i = undo_.size(); i > 0; --i) {
    *undo_[i - 1].addr = undo_[i - 1].old_value;
  }
  undo_.clear();
}

// ---------------------------------------------------------------------------
// RevocableMutex

void RevocableMutex::acquire(int priority, Section* section) {
  std::unique_lock<std::mutex> lk(m_);
  ++stats_.acquires;
  RVK_CHECK_MSG(!(held_ && owner_ == std::this_thread::get_id()),
                "recursive run() on the same RevocableMutex");
  if (held_ || !waiting_.empty()) {
    ++stats_.contended;
    // Priority-inversion check against the *current* owner; later owners
    // can only be of equal or higher priority than us (handoff order), so
    // one request suffices.
    if (held_ && priority > owner_priority_) {
      if (current_section_ != nullptr && !current_section_->nonrevocable()) {
        revoke_requested_.store(true, std::memory_order_relaxed);
        ++stats_.revocations_requested;
      } else {
        ++stats_.denied_nonrevocable;
      }
    }
    auto it = waiting_.insert(priority);
    const auto wait_start = std::chrono::steady_clock::now();
    auto next_probe = wait_start + deadlock_probe_;
    const auto ready = [this, priority] {
      return !held_ && priority >= *waiting_.rbegin();
    };
    // A blocked acquire is itself a revocation point: poll for (a) the
    // handoff, (b) revocation requests against sections WE hold (a
    // deadlock peer clearing its path through us), (c) our own impatience.
    while (!cv_.wait_for(lk, std::chrono::milliseconds(1), ready)) {
      // (b) Unwind if any of our held revocable sections was asked to
      // roll back — we cannot serve that request while parked here.
      for (Section* held : detail::tl_sections) {
        RevocableMutex& hm = held->mutex_;
        if (&hm != this && !held->nonrevocable() &&
            hm.revoke_requested_.load(std::memory_order_relaxed)) {
          waiting_.erase(it);
          lk.unlock();
          throw SectionRevoked(&hm);
        }
      }
      // (c) Deadlock probe: after waiting `deadlock_probe_`, request the
      // holder's revocation regardless of priority.  Symmetric cycles pick
      // one requester by thread-id hash; a thread whose held sections are
      // all pinned may always request (it cannot be revoked itself).
      if (deadlock_probe_.count() > 0 &&
          std::chrono::steady_clock::now() >= next_probe) {
        next_probe += deadlock_probe_;
        if (held_ && current_section_ != nullptr &&
            !current_section_->nonrevocable()) {
          // std::thread::id's total order gives a collision-free tie-break.
          bool allowed = std::this_thread::get_id() < owner_;
          if (!allowed && !detail::tl_sections.empty()) {
            allowed = true;
            for (Section* held : detail::tl_sections) {
              if (!held->nonrevocable()) {
                allowed = false;
                break;
              }
            }
          }
          if (allowed) {
            revoke_requested_.store(true, std::memory_order_relaxed);
            ++stats_.impatient_requests;
          }
        }
      }
    }
    waiting_.erase(it);
  }
  held_ = true;
  owner_ = std::this_thread::get_id();
  owner_priority_ = priority;
  current_section_ = section;  // published under m_; contenders read under m_
}

void RevocableMutex::release_locked(std::unique_lock<std::mutex>& lk) {
  held_ = false;
  owner_ = std::thread::id{};
  owner_priority_ = 0;
  current_section_ = nullptr;
  revoke_requested_.store(false, std::memory_order_relaxed);
  lk.unlock();
  cv_.notify_all();
}

void RevocableMutex::commit(Section& s) {
  (void)s;
  std::unique_lock<std::mutex> lk(m_);
  ++stats_.commits;
  release_locked(lk);
}

void RevocableMutex::abort(Section& s) {
  // Undo before anyone else can enter: we still hold the mutex, and cells
  // are only touchable by the holder, so the replay is race-free.
  s.rollback();
  std::unique_lock<std::mutex> lk(m_);
  ++stats_.rollbacks;
  release_locked(lk);
}

MutexStats RevocableMutex::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

bool try_set_native_priority(int rt_priority) {
  sched_param param{};
  param.sched_priority = rt_priority;
  return pthread_setschedparam(pthread_self(), SCHED_RR, &param) == 0;
}

}  // namespace rvk::pthreadrt
