// Revocable locking for native threads (extension beyond the paper).
//
// The paper's mechanism lives inside a green-thread VM, where yield points
// and single-core scheduling make revocation delivery and undo atomicity
// easy.  This module transplants the same protocol onto preemptive
// std::thread: critical sections are speculative callables over TxCell
// variables, writes are undo-logged, and a higher-priority contender can
// force the holder to roll back at its next explicit safepoint.
//
// Differences from core/ (all forced by native preemption):
//  * safepoints are explicit calls inside the section body (the compiler
//    yield points of §3.1 have no host-C++ equivalent);
//  * priorities are logical values passed to run() — real-time OS priorities
//    need privileges; try_set_native_priority() attempts them best-effort;
//  * sections on one mutex are the unit of speculation; nesting across
//    mutexes is supported (inner sections commit into the outer's log), but
//    revocation always targets the outermost section of the contended
//    mutex, like core/.
//
// JMM-style escape analysis is replaced by a simpler contract: TxCell reads
// and writes are only legal inside a section holding the owning mutex, so a
// speculative value can never escape to another thread and rollback is
// always consistent.  (Cells are owned by exactly one mutex, declared at
// construction.)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace rvk::pthreadrt {

using Word = std::uint64_t;

class RevocableMutex;
template <typename T>
class TxArray;

// Thrown inside a section when a revocation request is observed at a
// safepoint.  Internal control flow — never swallow it.
class SectionRevoked {
 public:
  explicit SectionRevoked(const RevocableMutex* target) : target_(target) {}
  const RevocableMutex* target() const { return target_; }

 private:
  const RevocableMutex* target_;
};

// A word-sized transactional variable owned by one RevocableMutex.
template <typename T>
class TxCell {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Word),
                "TxCell holds trivially copyable word-sized values");

 public:
  explicit TxCell(RevocableMutex& owner, T initial = T{});

  TxCell(const TxCell&) = delete;
  TxCell& operator=(const TxCell&) = delete;

  // Reads/writes are members of Section (enforcing the holding rule); the
  // cell itself only exposes unsynchronized access for setup/teardown.
  T unsafe_get() const {
    T v{};
    std::memcpy(&v, &word_, sizeof(T));
    return v;
  }
  void unsafe_set(T v) { std::memcpy(&word_, &v, sizeof(T)); }

 private:
  friend class Section;
  RevocableMutex& owner_;
  Word word_ = 0;
};

struct MutexStats {
  std::uint64_t acquires = 0;
  std::uint64_t contended = 0;
  std::uint64_t revocations_requested = 0;
  std::uint64_t impatient_requests = 0;  // deadlock-probe revocations
  std::uint64_t rollbacks = 0;
  std::uint64_t denied_nonrevocable = 0;
  std::uint64_t commits = 0;
};

// Handle passed to section bodies; provides cell access, safepoints, and
// pinning.
class Section {
 public:
  template <typename T>
  T read(TxCell<T>& cell) {
    check_owner(cell_owner(cell));
    return cell.unsafe_get();
  }

  template <typename T>
  void write(TxCell<T>& cell, T value) {
    check_owner(cell_owner(cell));
    undo_.push_back(UndoEntry{&cell_word(cell), cell_word(cell)});
    cell.unsafe_set(value);
  }

  template <typename T>
  T read(TxArray<T>& arr, std::size_t i) {
    check_owner(arr.owner_);
    RVK_CHECK_MSG(i < arr.size(), "TxArray index out of range");
    return arr.unsafe_get(i);
  }

  template <typename T>
  void write(TxArray<T>& arr, std::size_t i, T value) {
    check_owner(arr.owner_);
    RVK_CHECK_MSG(i < arr.size(), "TxArray index out of range");
    undo_.push_back(UndoEntry{&arr.words_[i], arr.words_[i]});
    arr.unsafe_set(i, value);
  }

  // Revocation delivery point: throws SectionRevoked if a contender posted a
  // request and this section is still revocable.
  void safepoint();

  // Marks the section irrevocable (the paper's native-call/wait rule).
  // Pending and future requests are refused; contenders block normally.
  void set_nonrevocable();

  bool nonrevocable() const { return nonrevocable_; }
  std::size_t writes_logged() const { return undo_.size(); }

 private:
  friend class RevocableMutex;
  struct UndoEntry {
    Word* addr;
    Word old_value;
  };

  explicit Section(RevocableMutex& m) : mutex_(m) {}

  template <typename T>
  static RevocableMutex& cell_owner(TxCell<T>& c) {
    return c.owner_;
  }
  template <typename T>
  static Word& cell_word(TxCell<T>& c) {
    return c.word_;
  }
  void check_owner(RevocableMutex& owner) const;
  void rollback();

  RevocableMutex& mutex_;
  std::vector<UndoEntry> undo_;
  bool nonrevocable_ = false;
};

namespace detail {
// Per-thread stack of active sections; entering a nested section pins the
// enclosing ones (see the module comment).
extern thread_local std::vector<Section*> tl_sections;
}  // namespace detail

class RevocableMutex {
 public:
  // `deadlock_probe`: if nonzero, a contender that has waited this long
  // suspects a deadlock and may request the holder's revocation regardless
  // of priority.  Cross-mutex deadlocks become breakable because blocked
  // acquires are themselves revocation points: a thread waiting for mutex B
  // while holding a revocable section of mutex A notices A's revocation
  // request during the wait and unwinds (throwing SectionRevoked(A) out of
  // the blocked acquire), releasing A.  To avoid mutual-revocation
  // livelock, in a symmetric cycle only the thread with the smaller
  // thread id issues the impatient request; a thread whose held
  // sections are all non-revocable may always issue one (it cannot be the
  // victim itself).
  explicit RevocableMutex(std::string name,
                          std::chrono::milliseconds deadlock_probe =
                              std::chrono::milliseconds(0))
      : name_(std::move(name)), deadlock_probe_(deadlock_probe) {}

  RevocableMutex(const RevocableMutex&) = delete;
  RevocableMutex& operator=(const RevocableMutex&) = delete;

  // Runs `body(Section&)` as a speculative critical section at the given
  // logical priority.  If a higher-priority thread contends, the section is
  // revoked at its next safepoint: writes are undone, the mutex is handed
  // over, and the body re-runs from the start once the mutex is
  // reacquirable.  Returns the number of rollbacks the section suffered.
  template <typename F>
  int run(int priority, F&& body) {
    int rollbacks = 0;
    for (;;) {
      Section section(*this);
      // acquire() publishes the section pointer while holding the internal
      // lock — contenders inspect it (revocability) under the same lock.
      acquire(priority, &section);
      // Cross-mutex nesting: a revocation of an enclosing section cannot
      // undo this section's (independently committed) writes, so the
      // enclosing sections become irrevocable — the conservative analogue
      // of the paper's native-call rule.
      for (Section* outer : detail::tl_sections) outer->set_nonrevocable();
      detail::tl_sections.push_back(&section);
      try {
        body(section);
        detail::tl_sections.pop_back();
        commit(section);
        return rollbacks;
      } catch (const SectionRevoked& e) {
        detail::tl_sections.pop_back();
        abort(section);
        if (e.target() != this) throw;  // outer mutex's revocation
        ++rollbacks;
        // Give the preempting thread the lock before retrying.
        std::this_thread::yield();
      } catch (...) {
        // User exception: Java-style abrupt completion — updates stand.
        detail::tl_sections.pop_back();
        commit(section);
        throw;
      }
    }
  }

  const std::string& name() const { return name_; }
  MutexStats stats() const;

 private:
  friend class Section;

  void acquire(int priority, Section* section);
  void release_locked(std::unique_lock<std::mutex>& lk);
  void commit(Section& s);
  void abort(Section& s);

  std::string name_;
  std::chrono::milliseconds deadlock_probe_{0};
  mutable std::mutex m_;
  std::condition_variable cv_;
  bool held_ = false;
  std::thread::id owner_{};
  int owner_priority_ = 0;
  // Priorities of current waiters; on release the highest one wins the
  // handoff (the prioritized monitor queues of §4).
  std::multiset<int> waiting_;
  std::atomic<bool> revoke_requested_{false};
  Section* current_section_ = nullptr;  // valid only while held
  MutexStats stats_;
};

template <typename T>
TxCell<T>::TxCell(RevocableMutex& owner, T initial) : owner_(owner) {
  unsafe_set(initial);
}

// A fixed-length array of word-sized transactional values owned by one
// mutex; element writes are undo-logged like TxCell stores.
template <typename T>
class TxArray {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Word),
                "TxArray holds trivially copyable word-sized values");

 public:
  TxArray(RevocableMutex& owner, std::size_t length, T initial = T{})
      : owner_(owner), words_(length, 0) {
    for (std::size_t i = 0; i < length; ++i) unsafe_set(i, initial);
  }

  TxArray(const TxArray&) = delete;
  TxArray& operator=(const TxArray&) = delete;

  std::size_t size() const { return words_.size(); }

  T unsafe_get(std::size_t i) const {
    T v{};
    std::memcpy(&v, &words_[i], sizeof(T));
    return v;
  }
  void unsafe_set(std::size_t i, T v) { std::memcpy(&words_[i], &v, sizeof(T)); }

 private:
  friend class Section;
  RevocableMutex& owner_;
  std::vector<Word> words_;
};

// Best-effort attempt to give the calling thread a real-time OS priority
// (SCHED_RR at `rt_priority`); returns false without privileges.  The
// library's protocol works on logical priorities regardless.
bool try_set_native_priority(int rt_priority);

}  // namespace rvk::pthreadrt
