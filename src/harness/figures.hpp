// Figure runner: regenerates the paper's evaluation figures (§4.2).
//
// Each of Figures 5–8 is a three-panel plot over thread mixes (2 hi + 8 lo,
// 5 hi + 5 lo, 8 hi + 2 lo), sweeping the write ratio {0,20,40,60,80,100}%
// with two series, MODIFIED and UNMODIFIED, normalized to the unmodified
// VM at 100% reads.  Figures 5/6 plot high-priority elapsed time at 100K /
// 500K high-priority inner iterations; Figures 7/8 plot overall elapsed
// time for the same runs.
//
// Two clocks are reported for every point:
//  * virtual ticks (one tick = one inner-loop operation = one yield point)
//    — the scheduling behaviour: lock waiting, preemption, re-execution.
//    Deterministic per seed; this is the primary series for the paper's
//    headline claims (who wins, where the benefit diminishes).
//  * wall-clock seconds — adds the per-operation costs ticks cannot see:
//    write-barrier logging, undo-log memory traffic, dependency marks.
//    This is where the paper's secondary observations live (overhead
//    growing with write ratio; logging outweighing the benefit at 100%
//    writes).  At scaled-down section lengths the wall numbers understate
//    the scheduling benefit relative to the paper — see EXPERIMENTS.md.
//
// Methodology follows §4.1: each configuration runs reps+1 times, the first
// (warm-up) iteration is discarded, and the mean with a 90% confidence
// interval over the remaining reps is reported.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/workload.hpp"

namespace rvk::harness {

struct PanelSpec {
  int high_threads;
  int low_threads;
};

struct FigureSpec {
  std::string id;     // e.g. "fig5"
  std::string title;  // e.g. "Total time for high-priority threads, 100K"
  std::uint64_t high_iters = 4'000;
  bool overall = false;  // false: high-priority group elapsed (Figs 5/6);
                         // true: all-threads elapsed (Figs 7/8)
  std::vector<int> write_percents = {0, 20, 40, 60, 80, 100};
  std::vector<PanelSpec> panels = {{2, 8}, {5, 5}, {8, 2}};
  int reps = 3;           // measured repetitions (paper: 5), plus 1 warm-up
  WorkloadParams base;    // sections/low_iters/seed/engine configuration
};

// One measured series (modified or unmodified VM) at one point, on both
// clocks, normalized to the panel baseline.
struct SeriesPoint {
  Summary ticks;   // normalized virtual-tick elapsed
  Summary wall;    // normalized wall-clock elapsed
  double raw_ticks_mean = 0.0;
  double raw_wall_mean = 0.0;
};

struct PointResult {
  int write_pct;
  SeriesPoint modified;
  SeriesPoint unmodified;
  core::EngineStats engine;  // stats of the last modified rep at this point
};

struct PanelResult {
  PanelSpec spec;
  double baseline_ticks = 0.0;  // unmodified @ 0% writes (normalizers)
  double baseline_wall = 0.0;
  std::vector<PointResult> points;
};

struct FigureResult {
  FigureSpec spec;
  std::vector<PanelResult> panels;
};

// Runs the whole figure.  If `progress` is non-null, one line per completed
// configuration is written to it.
FigureResult run_figure(const FigureSpec& spec, std::ostream* progress);

// Pretty-prints the figure as per-panel tables plus the paper's summary
// statistics (average high-priority gain, average overall overhead).
void print_figure(const FigureResult& fig, std::ostream& os);

// Writes one CSV row per (panel, write%, series) to `path`.  Returns false
// if the file could not be created/written.
bool write_csv(const FigureResult& fig, const std::string& path);

// Mean percentage gain of the modified VM over the unmodified VM on the
// tick clock across all points ((unmod/mod − 1)·100).
// `exclude_more_high_than_low` drops panels with more high- than
// low-priority threads, matching the paper's "if we discard the
// configuration where there are eight high-priority threads…".
double average_gain_percent(const FigureResult& fig,
                            bool exclude_more_high_than_low);

// Mean wall-clock overhead of the modified VM ((mod/unmod − 1)·100) — the
// §4.2 "on average 30% higher on the modified VM" number for Figures 7/8.
double average_overhead_percent(const FigureResult& fig);

}  // namespace rvk::harness
