// Environment-variable controls shared by the figure binaries.
//
//   RVK_PAPER=1       run paper-size parameters: 100 sections/thread,
//                     500K low-priority iterations, 100K/500K high-priority
//                     iterations, 5 measured reps (takes hours, like the
//                     original on an 800MHz P-III).
//   RVK_REPS=<n>      measured repetitions per configuration (default 3).
//   RVK_SECTIONS=<n>  synchronized sections per thread.
//   RVK_LOW_ITERS=<n> low-priority inner-loop iterations; high-priority
//                     iteration counts scale with the same factor vs paper.
//   RVK_SEED=<n>      base RNG seed.
//   RVK_CSV=<dir>     also write <dir>/<figure-id>.csv.
//
// Observability knobs (read directly by obs::Recorder, not by apply_env —
// see src/obs/recorder.hpp and DESIGN.md §10):
//
//   RVK_OBS=1         record the whole sweep: metrics accumulate across
//                     repetitions, the event trace keeps the last one, and
//                     obs_<figure-id>_metrics.json plus
//                     obs_<figure-id>_trace.json are written at the end.
//   RVK_OBS_METRICS=<file>  metrics output path override (implies RVK_OBS).
//   RVK_OBS_TRACE=<file>    Chrome/Perfetto trace path override (implies
//                           RVK_OBS).
//   RVK_OBS_RING=<n>  per-thread event-ring capacity (default 4096,
//                     rounded up to a power of two; drop-oldest overflow).
#pragma once

#include <string>

#include "harness/figures.hpp"

namespace rvk::harness {

// Applies the environment overrides to a figure spec whose defaults are the
// scaled-down parameters.  `paper_high_iters` is the figure's paper-size
// high-priority iteration count (100'000 or 500'000); the scaled value keeps
// the paper's high:low ratio.
void apply_env(FigureSpec& spec, std::uint64_t paper_high_iters);

// Directory from RVK_CSV, or empty.
std::string csv_dir();

}  // namespace rvk::harness
