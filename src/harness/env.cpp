#include "harness/env.hpp"

#include <cstdlib>

namespace rvk::harness {

namespace {
bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}
}  // namespace

void apply_env(FigureSpec& spec, std::uint64_t paper_high_iters) {
  constexpr std::uint64_t kPaperLowIters = 500'000;
  constexpr int kPaperSections = 100;

  if (env_flag("RVK_PAPER")) {
    spec.base.sections_per_thread = kPaperSections;
    spec.base.low_iters = kPaperLowIters;
    spec.high_iters = paper_high_iters;
    spec.reps = 5;
  }
  spec.reps = static_cast<int>(env_u64("RVK_REPS",
                                       static_cast<std::uint64_t>(spec.reps)));
  if (spec.reps < 1) spec.reps = 1;  // malformed/zero RVK_REPS
  spec.base.sections_per_thread = static_cast<int>(env_u64(
      "RVK_SECTIONS",
      static_cast<std::uint64_t>(spec.base.sections_per_thread)));
  const std::uint64_t low =
      env_u64("RVK_LOW_ITERS", spec.base.low_iters);
  if (low != spec.base.low_iters) {
    // Preserve the paper's high:low iteration ratio under rescaling.
    spec.high_iters = spec.high_iters * low / spec.base.low_iters;
    spec.base.low_iters = low;
  }
  // The timing regime scales with the workload (see WorkloadParams): the
  // quantum spans one low-priority section and the mean pre-entry pause is
  // 1.5 quanta, mirroring the paper's timeslice/section/pause ratios.
  spec.base.scheduler_quantum = static_cast<int>(spec.base.low_iters);
  spec.base.avg_pause_ticks = spec.base.low_iters * 3 / 2;
  spec.base.seed = env_u64("RVK_SEED", spec.base.seed);
}

std::string csv_dir() {
  const char* v = std::getenv("RVK_CSV");
  return v != nullptr ? std::string(v) : std::string();
}

}  // namespace rvk::harness
