#include "harness/figures.hpp"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>

#include "common/check.hpp"

namespace rvk::harness {

namespace {

struct RawSamples {
  std::vector<double> wall;   // seconds
  std::vector<double> ticks;  // virtual ticks
};

// Runs one configuration reps+1 times (first discarded) and returns the raw
// elapsed samples on both clocks.
RawSamples run_samples(VmKind vm, const WorkloadParams& p, bool overall,
                       int reps, core::EngineStats* last_engine) {
  RawSamples out;
  out.wall.reserve(static_cast<std::size_t>(reps));
  out.ticks.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i <= reps; ++i) {
    WorkloadParams rp = p;
    rp.seed = p.seed + static_cast<std::uint64_t>(i) * 0x1234567ULL;
    WorkloadResult r = run_workload(vm, rp);
    if (i == 0) continue;  // warm-up, discarded (§4.1)
    out.wall.push_back(overall ? r.overall_elapsed_s : r.high_elapsed_s);
    out.ticks.push_back(static_cast<double>(
        overall ? r.overall_elapsed_ticks : r.high_elapsed_ticks));
    if (last_engine != nullptr) *last_engine = r.engine;
  }
  return out;
}

std::vector<double> normalize(const std::vector<double>& samples,
                              double baseline) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (double s : samples) out.push_back(s / baseline);
  return out;
}

SeriesPoint make_series(const RawSamples& raw, double baseline_ticks,
                        double baseline_wall) {
  SeriesPoint s;
  s.ticks = summarize(normalize(raw.ticks, baseline_ticks));
  s.wall = summarize(normalize(raw.wall, baseline_wall));
  s.raw_ticks_mean = summarize(raw.ticks).mean;
  s.raw_wall_mean = summarize(raw.wall).mean;
  return s;
}

}  // namespace

FigureResult run_figure(const FigureSpec& spec, std::ostream* progress) {
  FigureResult fig;
  fig.spec = spec;

  // Warm the process once (allocators, CPU frequency) before anything that
  // will be used as a normalizer is measured.
  {
    WorkloadParams warm = spec.base;
    warm.high_threads = spec.panels.front().high_threads;
    warm.low_threads = spec.panels.front().low_threads;
    warm.high_iters = spec.high_iters;
    (void)run_workload(VmKind::kUnmodified, warm);
  }

  for (const PanelSpec& panel : spec.panels) {
    PanelResult pr;
    pr.spec = panel;

    WorkloadParams base = spec.base;
    base.high_threads = panel.high_threads;
    base.low_threads = panel.low_threads;
    base.high_iters = spec.high_iters;

    // Collect raw samples for every point first; the normalizer (§4.2:
    // "normalized with respect to the configuration executing 100% reads
    // on an unmodified VM") is the unmodified 0%-writes point itself, so
    // it shares the measurement conditions of the rest of the sweep.
    struct RawPoint {
      int write_pct;
      RawSamples unmod, mod;
      core::EngineStats engine;
    };
    std::vector<RawPoint> raws;
    for (int wp : spec.write_percents) {
      WorkloadParams p = base;
      p.write_percent = static_cast<unsigned>(wp);
      RawPoint rp;
      rp.write_pct = wp;
      rp.unmod = run_samples(VmKind::kUnmodified, p, spec.overall, spec.reps,
                             nullptr);
      rp.mod = run_samples(VmKind::kModified, p, spec.overall, spec.reps,
                           &rp.engine);
      raws.push_back(std::move(rp));
      if (progress != nullptr) {
        *progress << spec.id << " [" << panel.high_threads << "hi+"
                  << panel.low_threads << "lo] " << std::setw(3) << wp
                  << "% writes measured\n";
        progress->flush();
      }
    }

    const RawPoint* zero = nullptr;
    for (const RawPoint& rp : raws) {
      if (rp.write_pct == 0) zero = &rp;
    }
    if (zero == nullptr) zero = &raws.front();  // custom sweeps without 0%
    pr.baseline_ticks = summarize(zero->unmod.ticks).mean;
    pr.baseline_wall = summarize(zero->unmod.wall).mean;
    RVK_CHECK_MSG(pr.baseline_ticks > 0.0 && pr.baseline_wall > 0.0,
                  "degenerate baseline elapsed time");

    for (const RawPoint& rp : raws) {
      PointResult point;
      point.write_pct = rp.write_pct;
      point.engine = rp.engine;
      point.unmodified =
          make_series(rp.unmod, pr.baseline_ticks, pr.baseline_wall);
      point.modified =
          make_series(rp.mod, pr.baseline_ticks, pr.baseline_wall);
      pr.points.push_back(point);
    }
    fig.panels.push_back(std::move(pr));
  }
  return fig;
}

void print_figure(const FigureResult& fig, std::ostream& os) {
  os << "==== " << fig.spec.title << " (" << fig.spec.id << ") ====\n";
  os << "  elapsed " << (fig.spec.overall ? "overall" : "high-priority")
     << " time, normalized to UNMODIFIED @ 0% writes; mean of "
     << fig.spec.reps
     << " reps, +/- = 90% CI half-width\n"
     << "  primary series: virtual ticks (scheduling); secondary: wall "
        "seconds (adds logging costs)\n";
  const char* panel_letter = "abc";
  for (std::size_t i = 0; i < fig.panels.size(); ++i) {
    const PanelResult& p = fig.panels[i];
    os << "  (" << panel_letter[i % 3] << ") " << p.spec.high_threads
       << " high-priority, " << p.spec.low_threads
       << " low-priority   [baselines: " << std::fixed << std::setprecision(0)
       << p.baseline_ticks << " ticks, " << std::setprecision(4)
       << p.baseline_wall << " s]\n";
    os << "      write%  UNMOD(ticks)     MOD(ticks)       "
       << (fig.spec.overall ? " ovh%" : "gain%")
       << "   UNMOD(wall)      MOD(wall)\n";
    for (const PointResult& pt : p.points) {
      // Figures 5/6 report the modified VM's speedup of the high-priority
      // group; Figures 7/8 report its overall slowdown.
      const double gain =
          fig.spec.overall
              ? (pt.modified.ticks.mean / pt.unmodified.ticks.mean - 1.0) *
                    100.0
              : (pt.unmodified.ticks.mean / pt.modified.ticks.mean - 1.0) *
                    100.0;
      os << "      " << std::setw(5) << pt.write_pct << "  " << std::fixed
         << std::setprecision(3) << std::setw(5) << pt.unmodified.ticks.mean
         << " +/- " << std::setw(5) << pt.unmodified.ticks.ci90_half << "  "
         << std::setw(5) << pt.modified.ticks.mean << " +/- " << std::setw(5)
         << pt.modified.ticks.ci90_half << "  " << std::setprecision(1)
         << std::setw(6) << gain << "   " << std::setprecision(3)
         << std::setw(5) << pt.unmodified.wall.mean << " +/- " << std::setw(5)
         << pt.unmodified.wall.ci90_half << "  " << std::setw(5)
         << pt.modified.wall.mean << " +/- " << std::setw(5)
         << pt.modified.wall.ci90_half << "\n";
    }
  }
  if (fig.spec.overall) {
    os << "  average modified-VM wall overhead: " << std::setprecision(1)
       << average_overhead_percent(fig) << "% (paper: ~30%)\n";
  } else {
    os << "  average high-priority tick gain (all panels): "
       << std::setprecision(1) << average_gain_percent(fig, false)
       << "%  |  excluding panels with more high than low threads: "
       << average_gain_percent(fig, true) << "% (paper: 78% / ~100%)\n";
  }
}

bool write_csv(const FigureResult& fig, const std::string& path) {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << "figure,high_threads,low_threads,write_pct,series,"
       "norm_ticks_mean,norm_ticks_ci90,norm_wall_mean,norm_wall_ci90,"
       "raw_ticks,raw_seconds\n";
  auto row = [&](const PanelResult& p, const PointResult& pt,
                 const char* name, const SeriesPoint& s) {
    f << fig.spec.id << ',' << p.spec.high_threads << ','
      << p.spec.low_threads << ',' << pt.write_pct << ',' << name << ','
      << s.ticks.mean << ',' << s.ticks.ci90_half << ',' << s.wall.mean
      << ',' << s.wall.ci90_half << ',' << s.raw_ticks_mean << ','
      << s.raw_wall_mean << "\n";
  };
  for (const PanelResult& p : fig.panels) {
    for (const PointResult& pt : p.points) {
      row(p, pt, "unmodified", pt.unmodified);
      row(p, pt, "modified", pt.modified);
    }
  }
  return f.good();
}

double average_gain_percent(const FigureResult& fig,
                            bool exclude_more_high_than_low) {
  double sum = 0.0;
  int n = 0;
  for (const PanelResult& p : fig.panels) {
    if (exclude_more_high_than_low &&
        p.spec.high_threads > p.spec.low_threads) {
      continue;
    }
    for (const PointResult& pt : p.points) {
      sum += (pt.unmodified.ticks.mean / pt.modified.ticks.mean - 1.0) * 100.0;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double average_overhead_percent(const FigureResult& fig) {
  double sum = 0.0;
  int n = 0;
  for (const PanelResult& p : fig.panels) {
    for (const PointResult& pt : p.points) {
      sum += (pt.modified.wall.mean / pt.unmodified.wall.mean - 1.0) * 100.0;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace rvk::harness
