#include "harness/workload.hpp"

#include <chrono>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "heap/heap.hpp"
#include "monitor/monitor.hpp"
#include "obs/recorder.hpp"

namespace rvk::harness {

namespace {

using Clock = std::chrono::steady_clock;

struct ThreadTimes {
  Clock::time_point wall_start, wall_end;
  std::uint64_t tick_start = 0, tick_end = 0;
  bool high = false;
};

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

WorkloadResult run_workload(VmKind vm, const WorkloadParams& p) {
  rt::SchedulerConfig scfg;
  scfg.quantum = p.scheduler_quantum;
  rt::Scheduler sched(scfg);
  // Fresh scheduler ⇒ thread ids and the virtual clock restart; tell an
  // active recorder so its per-thread rings do too (metrics keep
  // accumulating — DESIGN.md §10).
  obs::on_run_begin();

  std::optional<core::Engine> engine;
  core::RevocableMonitor* rmon = nullptr;
  std::unique_ptr<monitor::BlockingMonitor> bmon;
  if (vm == VmKind::kModified) {
    engine.emplace(sched, p.engine);
    rmon = engine->make_monitor("shared");
  } else {
    bmon = std::make_unique<monitor::BlockingMonitor>("shared");
  }

  heap::Heap h;
  heap::HeapArray<std::uint64_t>* arr = h.alloc_array<std::uint64_t>(p.array_len);

  const int n = p.high_threads + p.low_threads;
  std::vector<ThreadTimes> times(static_cast<std::size_t>(n));
  std::uint64_t checksum = 0;
  std::uint64_t sections_executed = 0;

  auto thread_body = [&](int index, bool high) {
    SplitMix64 rng(p.seed ^ (0x9E3779B97F4A7C15ULL *
                             static_cast<std::uint64_t>(index + 1)));
    ThreadTimes& tm = times[static_cast<std::size_t>(index)];
    tm.high = high;
    tm.wall_start = Clock::now();
    tm.tick_start = sched.now();

    const std::uint64_t iters = high ? p.high_iters : p.low_iters;
    for (int s = 0; s < p.sections_per_thread; ++s) {
      // Random arrival at the monitor (§4.1).
      sched.sleep_for(rng.next_below(2 * p.avg_pause_ticks + 1));

      // The section seed is drawn *outside* the section, so a revoked
      // section re-executes the exact same operation sequence — the paper's
      // saved locals/operand stack.
      const std::uint64_t section_seed = rng.next();
      std::uint64_t acc = 0;
      auto section = [&] {
        acc = 0;  // reset on retry: the body must be heap-idempotent
        SplitMix64 srng(section_seed);
        // §4.1: "an interleaved sequence of read and write operations" at
        // the configured ratio.  The interleaving is deterministic (an
        // error-diffusion accumulator), not per-op random: it spreads
        // writes evenly exactly as "interleaved" describes, and keeps the
        // per-operation cost independent of the ratio (a per-op random
        // branch would add ratio-dependent misprediction cost to BOTH VMs
        // and warp the normalized curves).
        unsigned wacc = 50;
        for (std::uint64_t i = 0; i < iters; ++i) {
          const std::size_t idx =
              static_cast<std::size_t>(srng.next_below(p.array_len));
          // A short dependent ALU chain models the per-access cost of
          // JIT-compiled Java on the paper's platform (null/bounds checks,
          // barrier fast path, object addressing) so that the logging
          // slow path is a *fraction* of an operation, as in the paper,
          // rather than dominating it.  Identical for reads and writes and
          // for both VMs.  See DESIGN.md "workload calibration".
          acc = (acc ^ (acc >> 17)) * 0x9E3779B97F4A7C15ULL + i;
          acc ^= acc >> 29;
          wacc += p.write_percent;
          if (wacc >= 100) {
            wacc -= 100;
            arr->set(idx, acc);
          } else {
            acc += arr->get(idx);
          }
          sched.yield_point();
        }
      };

      if (vm == VmKind::kModified) {
        engine->synchronized(*rmon, section);
      } else {
        bmon->acquire();
        section();
        bmon->release();
      }
      checksum += acc;
      ++sections_executed;
    }

    tm.wall_end = Clock::now();
    tm.tick_end = sched.now();
  };

  // High-priority threads first, then low; the random pre-entry pauses
  // decorrelate the arrival order from the spawn order.
  for (int i = 0; i < n; ++i) {
    const bool high = i < p.high_threads;
    sched.spawn((high ? "high-" : "low-") + std::to_string(i),
                high ? p.high_priority : p.low_priority,
                [&thread_body, i, high] { thread_body(i, high); });
  }
  sched.run();

  WorkloadResult r;
  Clock::time_point hi_start{}, hi_end{}, all_start{}, all_end{};
  std::uint64_t hi_t0 = UINT64_MAX, hi_t1 = 0, all_t0 = UINT64_MAX, all_t1 = 0;
  bool hi_seen = false, all_seen = false;
  for (const ThreadTimes& tm : times) {
    if (!all_seen || tm.wall_start < all_start) all_start = tm.wall_start;
    if (!all_seen || tm.wall_end > all_end) all_end = tm.wall_end;
    all_seen = true;
    all_t0 = std::min(all_t0, tm.tick_start);
    all_t1 = std::max(all_t1, tm.tick_end);
    if (tm.high) {
      if (!hi_seen || tm.wall_start < hi_start) hi_start = tm.wall_start;
      if (!hi_seen || tm.wall_end > hi_end) hi_end = tm.wall_end;
      hi_seen = true;
      hi_t0 = std::min(hi_t0, tm.tick_start);
      hi_t1 = std::max(hi_t1, tm.tick_end);
    }
  }
  if (hi_seen) {
    r.high_elapsed_s = seconds_between(hi_start, hi_end);
    r.high_elapsed_ticks = hi_t1 - hi_t0;
  }
  if (all_seen) {
    r.overall_elapsed_s = seconds_between(all_start, all_end);
    r.overall_elapsed_ticks = all_t1 - all_t0;
  }
  if (engine.has_value()) r.engine = engine->stats();
  if (obs::Recorder* rec = obs::Recorder::active()) {
    // Publish the legacy stats structs into the unified registry (they stay
    // the storage; the registry is the export surface — obs/metrics.hpp).
    if (engine.has_value()) {
      engine->publish_metrics(rec->registry());
    } else {
      obs::publish(rec->registry(), bmon->stats(),
                   "monitor." + bmon->name() + ".stats.");
    }
  }
  r.sections_executed = sections_executed;
  r.checksum = checksum;
  return r;
}

}  // namespace rvk::harness
