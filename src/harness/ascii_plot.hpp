// ASCII rendering of figure panels — the terminal version of the paper's
// plots: write ratio on the x-axis, normalized elapsed time on the y-axis,
// MODIFIED ('M') vs UNMODIFIED ('u') series.
#pragma once

#include <iosfwd>

#include "harness/figures.hpp"

namespace rvk::harness {

struct PlotOptions {
  int width = 61;   // plot area columns
  int height = 16;  // plot area rows
  bool use_ticks = true;  // plot the tick series (false: wall series)
};

// Renders one panel as an ASCII chart.
void plot_panel(const PanelResult& panel, const PlotOptions& opts,
                std::ostream& os);

// Renders every panel of a figure (labelled (a), (b), (c) like the paper).
void plot_figure(const FigureResult& fig, const PlotOptions& opts,
                 std::ostream& os);

}  // namespace rvk::harness
