// The paper's micro-benchmark workload (§4.1).
//
// "The micro-benchmark executes several low and high-priority threads
// contending on the same lock. … Every thread executes 100 synchronized
// sections. Each synchronized section contains an inner loop executing an
// interleaved sequence of read and write operations. … We fixed the number
// of iterations of the inner loop for low-priority threads at 500K, and
// varied it for the high-priority threads (100K and 500K). … Our benchmark
// also includes a short random pause time (on average equal to a single
// thread quantum …) right before an entry to the synchronized section, to
// ensure random arrival of threads at the monitors."
//
// run_workload() executes that benchmark on one of two "VMs":
//  * kUnmodified — BlockingMonitor, no engine, no logging: the benchmark
//    code "compiled using the Jikes RVM optimizing compiler without any
//    modification";
//  * kModified  — RevocableMonitor + Engine: write barriers log every store
//    by every thread ("updates of both low-priority and high-priority
//    threads are logged for fairness") and priority inversion triggers
//    revocation.
//
// Elapsed times follow §4.1 exactly: a timestamp at the beginning and end of
// each thread's body; the group's elapsed time is latest-end minus
// earliest-start, reported for the high-priority group and for all threads.
#pragma once

#include <cstdint>
#include <optional>

#include "core/engine.hpp"

namespace rvk::harness {

enum class VmKind {
  kUnmodified,  // reference: blocking monitors, no barriers
  kModified,    // revocation-enabled VM
};

struct WorkloadParams {
  int high_threads = 2;
  int low_threads = 8;
  int high_priority = 8;
  int low_priority = 2;

  // Paper values: sections=100, low_iters=500'000, high_iters ∈ {100K,500K}.
  // Defaults here are the paper's shape scaled 1/25 in iterations and 1/2
  // in section count so a full figure sweep runs in tens of seconds; the
  // figure binaries honour RVK_PAPER=1 for paper-size parameters (env.hpp).
  int sections_per_thread = 50;
  std::uint64_t high_iters = 4'000;
  std::uint64_t low_iters = 20'000;

  unsigned write_percent = 0;  // 0..100; rest of the operations are reads

  std::size_t array_len = 64;  // shared array the inner loop reads/writes

  // Timing regime (calibrated; see DESIGN.md "workload calibration").  One
  // virtual tick = one inner-loop operation, matching Jikes RVM loop-edge
  // yield points.  The paper's 10–20 ms timeslice at 800 MHz spans roughly
  // one 500K-iteration section, and its random pre-entry pause averages one
  // timeslice; we keep those ratios: quantum ≈ one low-priority section and
  // pause ≈ 1.5 quanta.  These ratios are what create the paper's arrival
  // regime — low-priority threads waking from their pause reach a just-
  // released monitor before the woken waiter is dispatched, so inversions
  // keep occurring at every thread mix.
  std::uint64_t avg_pause_ticks = 30'000;
  int scheduler_quantum = 20'000;

  std::uint64_t seed = 0x5EEDB0A41ULL;

  // Engine knobs applied in kModified runs (detection mode, JMM guard, …).
  core::EngineConfig engine;
};

struct WorkloadResult {
  // Wall-clock group elapsed times (seconds).
  double high_elapsed_s = 0.0;
  double overall_elapsed_s = 0.0;
  // The same spans on the deterministic virtual clock (yield points).
  std::uint64_t high_elapsed_ticks = 0;
  std::uint64_t overall_elapsed_ticks = 0;

  core::EngineStats engine;  // zeros for kUnmodified
  std::uint64_t sections_executed = 0;
  std::uint64_t checksum = 0;  // accumulated read values (anti-DCE, and a
                               // determinism probe for tests)
};

WorkloadResult run_workload(VmKind vm, const WorkloadParams& params);

}  // namespace rvk::harness
