#include "harness/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

namespace rvk::harness {

namespace {

double series_value(const SeriesPoint& s, bool ticks) {
  return ticks ? s.ticks.mean : s.wall.mean;
}

}  // namespace

void plot_panel(const PanelResult& panel, const PlotOptions& opts,
                std::ostream& os) {
  if (panel.points.empty()) return;
  const int w = std::max(opts.width, 21);
  const int h = std::max(opts.height, 6);

  // Y range: 0 .. a little above the max of both series.
  double ymax = 0.0;
  for (const PointResult& pt : panel.points) {
    ymax = std::max(ymax, series_value(pt.modified, opts.use_ticks));
    ymax = std::max(ymax, series_value(pt.unmodified, opts.use_ticks));
  }
  ymax = std::max(ymax * 1.15, 0.1);

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  const int x_lo = panel.points.front().write_pct;
  const int x_hi = panel.points.back().write_pct;
  const double x_span = std::max(1, x_hi - x_lo);

  auto col_of = [&](int write_pct) {
    return static_cast<int>(
        std::lround((write_pct - x_lo) / x_span * (w - 1)));
  };
  auto row_of = [&](double y) {
    int r = static_cast<int>(std::lround((1.0 - y / ymax) * (h - 1)));
    return std::clamp(r, 0, h - 1);
  };

  // Reference line at y = 1.0 (the normalization baseline).
  {
    const int r = row_of(1.0);
    for (int c = 0; c < w; ++c) {
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = '.';
    }
  }

  // Connect consecutive points with interpolated marks, then overwrite the
  // sample positions with the series letter.
  auto draw_series = [&](char mark, bool modified) {
    for (std::size_t i = 0; i + 1 < panel.points.size(); ++i) {
      const PointResult& p0 = panel.points[i];
      const PointResult& p1 = panel.points[i + 1];
      const double y0 = series_value(modified ? p0.modified : p0.unmodified,
                                     opts.use_ticks);
      const double y1 = series_value(modified ? p1.modified : p1.unmodified,
                                     opts.use_ticks);
      const int c0 = col_of(p0.write_pct), c1 = col_of(p1.write_pct);
      for (int c = c0; c <= c1; ++c) {
        const double t = c1 == c0 ? 0.0 : double(c - c0) / (c1 - c0);
        const int r = row_of(y0 + (y1 - y0) * t);
        char& cell = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
        if (cell == ' ' || cell == '.') cell = (mark == 'M') ? '-' : '~';
      }
    }
    for (const PointResult& pt : panel.points) {
      const double y = series_value(modified ? pt.modified : pt.unmodified,
                                    opts.use_ticks);
      grid[static_cast<std::size_t>(row_of(y))]
          [static_cast<std::size_t>(col_of(pt.write_pct))] = mark;
    }
  };
  draw_series('u', /*modified=*/false);
  draw_series('M', /*modified=*/true);

  os << "  " << panel.spec.high_threads << " high + " << panel.spec.low_threads
     << " low   (normalized " << (opts.use_ticks ? "ticks" : "wall")
     << "; M = modified, u = unmodified, '.' = 1.0)\n";
  for (int r = 0; r < h; ++r) {
    // Left axis label at the top, the 1.0 line, and the bottom.
    std::string label = "      ";
    if (r == 0) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%5.2f ", ymax);
      label = buf;
    } else if (r == h - 1) {
      label = " 0.00 ";
    }
    os << label << '|' << grid[static_cast<std::size_t>(r)] << "|\n";
  }
  os << "      +" << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  os << "       " << x_lo << "% writes" << std::string(20, ' ')
     << "..." << std::string(20, ' ') << x_hi << "% writes\n";
}

void plot_figure(const FigureResult& fig, const PlotOptions& opts,
                 std::ostream& os) {
  const char* letters = "abc";
  os << "---- " << fig.spec.title << " ----\n";
  for (std::size_t i = 0; i < fig.panels.size(); ++i) {
    os << "(" << letters[i % 3] << ")\n";
    plot_panel(fig.panels[i], opts, os);
  }
}

}  // namespace rvk::harness
