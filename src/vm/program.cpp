#include "vm/program.hpp"

#include <sstream>

namespace rvk::vm {

Program Builder::build() {
  for (const auto& [at, label] : fixups_) {
    RVK_CHECK_MSG(labels_[label] != kUnbound, "jump to unbound label");
    code_[at].a = labels_[label];
  }
  Program p;
  p.code = code_;
  p.locals = locals_;
  for (const PendingHandler& h : pending_handlers_) {
    RVK_CHECK_MSG(labels_[h.from] != kUnbound && labels_[h.to] != kUnbound &&
                      labels_[h.handler] != kUnbound,
                  "exception handler references unbound label");
    p.handlers.push_back(ExceptionEntry{
        static_cast<std::size_t>(labels_[h.from]),
        static_cast<std::size_t>(labels_[h.to]),
        static_cast<std::size_t>(labels_[h.handler]), h.tag,
        h.monitor_depth});
  }
  return p;
}

std::string to_string(const Instr& instr) {
  static const char* const kNames[] = {
      "push",   "pop",      "dup",       "add",       "sub",
      "mul",    "cmplt",    "cmpeq",     "load",      "store",
      "getf",   "putf",     "getelem",   "putelem",   "getstatic",
      "putstatic", "monitorenter", "monitorexit", "wait", "notify",
      "notifyall", "jump",  "jz",        "throw",     "call",
      "ret",    "yield",    "sleep",     "native",    "halt"};
  std::ostringstream os;
  os << kNames[static_cast<int>(instr.op)] << " " << instr.a << " " << instr.b;
  return os.str();
}

Program make_synchronized_method(std::int64_t body_program,
                                 std::int64_t monitor, std::int64_t nargs) {
  Builder b;
  b.with_locals(static_cast<std::size_t>(nargs > 0 ? nargs : 1));
  b.monitor_enter(monitor);
  for (std::int64_t i = 0; i < nargs; ++i) b.load(i);  // forward arguments
  b.call(body_program, nargs);
  b.monitor_exit();
  b.ret();
  return b.build();
}

}  // namespace rvk::vm
