// A miniature stack-machine program representation (JVM-bytecode-shaped).
//
// The paper's implementation works at the bytecode level (§3.1.1): BCEL
// rewrites synchronized methods into monitorenter/monitorexit blocks, wraps
// each in an exception scope catching the rollback exception, and injects
// code "to save the values on the operand stack just before each
// rollback-scope's monitorenter opcode, and to restore the stack state in
// the handler before transferring control back to the monitorenter".
//
// The C++-level `Engine::synchronized(lambda)` API reproduces the semantics
// of that transformation but not its mechanics.  This module provides the
// mechanics: programs are instruction vectors with JVM-style exception
// tables, executed by vm::Interpreter, where monitorenter really does save
// the operand stack and a rollback really does transfer `pc` back to the
// monitorenter with the saved stack restored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace rvk::vm {

using Word = std::int64_t;

enum class Op : std::uint8_t {
  // Stack / arithmetic.
  kPush,     // push immediate a
  kPop,      // discard top
  kDup,      // duplicate top
  kAdd,      // pop b, pop a, push a+b
  kSub,      // pop b, pop a, push a-b
  kMul,      // pop b, pop a, push a*b
  kCmpLt,    // pop b, pop a, push a<b
  kCmpEq,    // pop b, pop a, push a==b

  // Locals (the "method parameters and local variables" of §3.1.1).
  kLoad,     // push locals[a]
  kStore,    // locals[a] = pop

  // Shared heap (barrier-instrumented; these are the putfield/Xastore/
  // putstatic stores of §3.1.2).
  kGetField,   // push objects[a].slot(b)
  kPutField,   // objects[a].slot(b) = pop
  kGetElem,    // idx = pop; push arrays[a][idx]
  kPutElem,    // val = pop; idx = pop; arrays[a][idx] = val
  kGetStatic,  // push statics[a]
  kPutStatic,  // statics[a] = pop

  // Synchronization.
  kMonitorEnter,  // enter monitors[a] (speculative section begins)
  kMonitorExit,   // exit the innermost section (commit)
  kWait,          // monitors[a].wait() — pins enclosing sections (§2.2)
  kNotify,        // monitors[a].notify()
  kNotifyAll,     // monitors[a].notifyAll()

  // Control flow.
  kJump,   // pc = a
  kJz,     // if (pop == 0) pc = a
  kThrow,  // throw user exception with tag a (dispatched via the table)

  // Methods.
  kCall,   // invoke machine.programs[a] with b arguments (popped into the
           // callee's locals 0..b-1, last argument on top of the stack)
  kRet,    // return to the caller, pushing the callee's top-of-stack (or 0)

  // Runtime interaction.
  kYield,   // an extra yield point (every instruction already is one)
  kSleep,   // sleep a virtual ticks
  kNative,  // a native call: pins the enclosing sections (§2.2)

  kHalt,
};

struct Instr {
  Op op;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

// JVM-style exception-table entry for USER exceptions (kThrow).  The first
// matching entry in table order wins (list inner scopes first).  On
// dispatch, monitor frames deeper than `monitor_depth` are exited
// (Java abrupt completion: monitors released, updates stand), the operand
// stack is cleared, the tag is pushed, and control transfers to
// `handler_pc`.
//
// The ROLLBACK exception never consults this table: the paper's modified
// dispatch "ignores all handlers (including finally blocks) that do not
// explicitly catch the rollback exception" (§3.1.2) — in this VM the
// rollback scopes injected around each synchronized section are implicit in
// the interpreter, exactly like the injected BCEL handlers.
struct ExceptionEntry {
  std::size_t start_pc;
  std::size_t end_pc;    // exclusive
  std::size_t handler_pc;
  std::int64_t tag;      // -1 = catch-all
  std::size_t monitor_depth;  // VM monitor frames live at the handler
};

struct Program {
  std::vector<Instr> code;
  std::vector<ExceptionEntry> handlers;
  std::size_t locals = 8;
};

// Fluent program assembler with label patching.
class Builder {
 public:
  using LabelId = std::size_t;

  LabelId label() {
    labels_.push_back(kUnbound);
    return labels_.size() - 1;
  }

  Builder& bind(LabelId l) {
    RVK_CHECK_MSG(labels_[l] == kUnbound, "label bound twice");
    labels_[l] = static_cast<std::int64_t>(code_.size());
    return *this;
  }

  Builder& emit(Op op, std::int64_t a = 0, std::int64_t b = 0) {
    code_.push_back(Instr{op, a, b});
    return *this;
  }

  Builder& push(Word v) { return emit(Op::kPush, v); }
  Builder& pop() { return emit(Op::kPop); }
  Builder& dup() { return emit(Op::kDup); }
  Builder& add() { return emit(Op::kAdd); }
  Builder& sub() { return emit(Op::kSub); }
  Builder& mul() { return emit(Op::kMul); }
  Builder& cmp_lt() { return emit(Op::kCmpLt); }
  Builder& cmp_eq() { return emit(Op::kCmpEq); }
  Builder& load(std::int64_t local) { return emit(Op::kLoad, local); }
  Builder& store(std::int64_t local) { return emit(Op::kStore, local); }
  Builder& get_field(std::int64_t obj, std::int64_t slot) {
    return emit(Op::kGetField, obj, slot);
  }
  Builder& put_field(std::int64_t obj, std::int64_t slot) {
    return emit(Op::kPutField, obj, slot);
  }
  Builder& get_elem(std::int64_t arr) { return emit(Op::kGetElem, arr); }
  Builder& put_elem(std::int64_t arr) { return emit(Op::kPutElem, arr); }
  Builder& get_static(std::int64_t off) { return emit(Op::kGetStatic, off); }
  Builder& put_static(std::int64_t off) { return emit(Op::kPutStatic, off); }
  Builder& monitor_enter(std::int64_t m) { return emit(Op::kMonitorEnter, m); }
  Builder& monitor_exit() { return emit(Op::kMonitorExit); }
  Builder& wait_on(std::int64_t m) { return emit(Op::kWait, m); }
  Builder& notify(std::int64_t m) { return emit(Op::kNotify, m); }
  Builder& notify_all(std::int64_t m) { return emit(Op::kNotifyAll, m); }
  Builder& jump(LabelId l) { return emit_label(Op::kJump, l); }
  Builder& jz(LabelId l) { return emit_label(Op::kJz, l); }
  Builder& call(std::int64_t prog, std::int64_t nargs) {
    return emit(Op::kCall, prog, nargs);
  }
  Builder& ret() { return emit(Op::kRet); }
  Builder& throw_user(std::int64_t tag) { return emit(Op::kThrow, tag); }
  Builder& yield() { return emit(Op::kYield); }
  Builder& sleep(std::int64_t ticks) { return emit(Op::kSleep, ticks); }
  Builder& native() { return emit(Op::kNative); }
  Builder& halt() { return emit(Op::kHalt); }

  // Registers a user-exception handler: [from, to) → handler, for `tag`
  // (-1 = any), with `monitor_depth` monitor frames live at the handler.
  Builder& on_exception(LabelId from, LabelId to, LabelId handler,
                        std::int64_t tag = -1, std::size_t monitor_depth = 0) {
    pending_handlers_.push_back(
        PendingHandler{from, to, handler, tag, monitor_depth});
    return *this;
  }

  Builder& with_locals(std::size_t n) {
    locals_ = n;
    return *this;
  }

  Program build();

 private:
  static constexpr std::int64_t kUnbound = -1;

  struct PendingHandler {
    LabelId from, to, handler;
    std::int64_t tag;
    std::size_t monitor_depth;
  };

  Builder& emit_label(Op op, LabelId l) {
    fixups_.push_back({code_.size(), l});
    return emit(op, kUnbound);
  }

  std::vector<Instr> code_;
  std::vector<std::int64_t> labels_;
  std::vector<std::pair<std::size_t, LabelId>> fixups_;
  std::vector<PendingHandler> pending_handlers_;
  std::size_t locals_ = 8;
};

// One-line disassembly, for diagnostics and tests.
std::string to_string(const Instr& instr);

// §3.1.1's synchronized-method transformation: "we transform synchronized
// methods into non-synchronized equivalents whose entire body is enclosed
// in a synchronized block.  For each synchronized method we create a
// non-synchronized wrapper with a signature identical to the original
// method" — returns that wrapper: monitorenter(monitor); call(body, nargs);
// monitorexit; ret.  The wrapper forwards its own locals 0..nargs-1 as the
// call arguments (the identical signature).
Program make_synchronized_method(std::int64_t body_program,
                                 std::int64_t monitor, std::int64_t nargs);

}  // namespace rvk::vm
