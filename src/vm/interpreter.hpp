// The interpreter: §3.1.1's bytecode transformation, executed for real.
//
//  * Every instruction boundary is a yield point — pending revocations are
//    delivered there ("interrupt execution of synchronized sections at
//    arbitrary points", §3).
//  * kMonitorEnter saves the operand stack and locals, then enters the
//    speculative section; kMonitorExit commits it.
//  * A RollbackException unwinds the VM's monitor frames exactly like the
//    injected BCEL handlers: each frame checks whether it is the rollback
//    target; inner frames abort-and-release and "re-throw" outward; the
//    target frame aborts, RESTORES the saved operand stack and locals, and
//    transfers control back to its monitorenter for re-execution.
//  * User exceptions (kThrow) use the program's JVM-style exception table —
//    and, faithfully to §3.1.2's modified dispatch, that table is never
//    consulted for rollbacks: a revoked section runs no user handlers.
#pragma once

#include <vector>

#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "heap/statics.hpp"
#include "vm/program.hpp"

namespace rvk::vm {

// The shared world a program executes against.  Indices in instructions
// refer to these tables.
struct Machine {
  core::Engine* engine = nullptr;
  std::vector<heap::HeapObject*> objects;
  std::vector<heap::HeapArray<std::uint64_t>*> arrays;
  std::vector<core::RevocableMonitor*> monitors;
  std::vector<const Program*> programs;  // kCall targets (owned by caller)
  heap::StaticsTable* statics = nullptr;
};

struct VmResult {
  bool halted = false;
  std::int64_t escaped_exception = -1;  // user exception that left main
  std::uint64_t instructions = 0;
  std::uint64_t rollbacks = 0;          // sections re-executed by this thread
  std::vector<Word> stack;              // operand stack at halt
  std::vector<Word> locals;
};

// Executes `program` on the CURRENT green thread (call from inside a
// spawned thread).  Deterministic given the machine and scheduler state.
VmResult execute(Machine& machine, const Program& program);

}  // namespace rvk::vm
