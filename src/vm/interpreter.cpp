#include "vm/interpreter.hpp"

#include "rt/scheduler.hpp"

namespace rvk::vm {

namespace {

// A method activation (JVM frame): its own operand stack and locals.
struct CallFrame {
  const Program* prog;
  std::size_t pc = 0;
  std::vector<Word> stack;
  std::vector<Word> locals;
};

// §3.1.1: the state saved "just before each rollback-scope's monitorenter"
// so a rollback can restore it and transfer control back.  `call_depth`
// lets a rollback discard method activations entered after the snapshot —
// with BCEL the rollback exception unwinds the Java call stack natively;
// here we truncate the interpreter's call stack explicitly.
struct MonFrame {
  std::size_t enter_pc;
  std::size_t call_depth;  // calls.size() at monitorenter
  std::uint64_t frame_id;
  std::vector<Word> saved_stack;
  std::vector<Word> saved_locals;
  int retries = 0;
};

[[noreturn]] void vm_trap(const char* what, std::size_t pc) {
  ::rvk::detail::check_failed("vm", static_cast<int>(pc), what,
                              "VM trap at pc shown as line");
}

}  // namespace

VmResult execute(Machine& machine, const Program& program) {
  rt::Scheduler* sched = rt::current_scheduler();
  RVK_CHECK_MSG(sched != nullptr && sched->current_thread() != nullptr,
                "vm::execute must run on a green thread");
  core::Engine& engine = *machine.engine;

  VmResult result;
  std::vector<CallFrame> calls;
  calls.push_back(CallFrame{&program, 0, {}, std::vector<Word>(program.locals, 0)});
  std::vector<MonFrame> frames;
  int pending_retries = 0;  // budget seed for the next monitorenter (set by
                            // a rollback restoring control to it)

  // A rollback's completion (finish_rollback: backoff sleep etc.) must run
  // INSIDE the try block: the backoff can itself be interrupted by a new
  // revocation targeting an enclosing frame, which this loop must catch.
  bool finish_pending = false;
  core::RollbackException finish_e(0, false);
  int finish_retries = 0;

  auto cur = [&]() -> CallFrame& { return calls.back(); };
  auto pop = [&]() -> Word {
    CallFrame& f = cur();
    if (f.stack.empty()) vm_trap("operand stack underflow", f.pc);
    Word v = f.stack.back();
    f.stack.pop_back();
    return v;
  };
  auto push = [&](Word v) { cur().stack.push_back(v); };

  // Dispatches a USER exception: searches the current method's table, then
  // propagates to callers (popping activations; monitor frames entered in a
  // popped activation are exited — Java abrupt completion, updates stand).
  // Returns false if the exception escapes the root method.
  auto dispatch_user = [&](std::int64_t tag) -> bool {
    for (;;) {
      CallFrame& f = cur();
      for (const ExceptionEntry& h : f.prog->handlers) {
        if (f.pc < h.start_pc || f.pc >= h.end_pc) continue;
        if (h.tag != -1 && h.tag != tag) continue;
        RVK_CHECK_MSG(h.monitor_depth <= frames.size(),
                      "handler monitor_depth deeper than live frames");
        while (frames.size() > h.monitor_depth) {
          engine.section_commit();
          frames.pop_back();
        }
        f.stack.clear();
        f.stack.push_back(tag);  // the handler receives the exception
        f.pc = h.handler_pc;
        return true;
      }
      // No handler in this method: release monitors entered here, then
      // propagate to the caller.
      while (!frames.empty() && frames.back().call_depth >= calls.size()) {
        engine.section_commit();
        frames.pop_back();
      }
      if (calls.size() == 1) return false;  // escapes the root method
      calls.pop_back();
    }
  };

  for (;;) {
    try {
      if (finish_pending) {
        finish_pending = false;
        engine.finish_rollback(finish_e, finish_retries);
      }
      for (;;) {
        // Every instruction boundary is a yield point; revocations are
        // delivered there as RollbackException.
        sched->yield_point();
        CallFrame& f = cur();
        if (f.pc >= f.prog->code.size()) vm_trap("pc out of range", f.pc);
        const Instr& in = f.prog->code[f.pc];
        ++result.instructions;
        switch (in.op) {
          case Op::kPush:
            push(in.a);
            ++f.pc;
            break;
          case Op::kPop:
            (void)pop();
            ++f.pc;
            break;
          case Op::kDup: {
            Word v = pop();
            push(v);
            push(v);
            ++f.pc;
            break;
          }
          case Op::kAdd: {
            Word b = pop(), a = pop();
            push(a + b);
            ++f.pc;
            break;
          }
          case Op::kSub: {
            Word b = pop(), a = pop();
            push(a - b);
            ++f.pc;
            break;
          }
          case Op::kMul: {
            Word b = pop(), a = pop();
            push(a * b);
            ++f.pc;
            break;
          }
          case Op::kCmpLt: {
            Word b = pop(), a = pop();
            push(a < b ? 1 : 0);
            ++f.pc;
            break;
          }
          case Op::kCmpEq: {
            Word b = pop(), a = pop();
            push(a == b ? 1 : 0);
            ++f.pc;
            break;
          }
          case Op::kLoad:
            push(f.locals.at(static_cast<std::size_t>(in.a)));
            ++f.pc;
            break;
          case Op::kStore:
            f.locals.at(static_cast<std::size_t>(in.a)) = pop();
            ++f.pc;
            break;
          case Op::kGetField:
            push(static_cast<Word>(
                machine.objects.at(static_cast<std::size_t>(in.a))
                    ->get_word(static_cast<std::size_t>(in.b))));
            ++f.pc;
            break;
          case Op::kPutField:
            machine.objects.at(static_cast<std::size_t>(in.a))
                ->set_word(static_cast<std::size_t>(in.b),
                           static_cast<std::uint64_t>(pop()));
            ++f.pc;
            break;
          case Op::kGetElem: {
            Word idx = pop();
            push(static_cast<Word>(
                machine.arrays.at(static_cast<std::size_t>(in.a))
                    ->get(static_cast<std::size_t>(idx))));
            ++f.pc;
            break;
          }
          case Op::kPutElem: {
            Word val = pop();
            Word idx = pop();
            machine.arrays.at(static_cast<std::size_t>(in.a))
                ->set(static_cast<std::size_t>(idx),
                      static_cast<std::uint64_t>(val));
            ++f.pc;
            break;
          }
          case Op::kGetStatic:
            push(static_cast<Word>(machine.statics->get_word(
                static_cast<std::uint32_t>(in.a))));
            ++f.pc;
            break;
          case Op::kPutStatic:
            machine.statics->set_word(static_cast<std::uint32_t>(in.a),
                                      static_cast<std::uint64_t>(pop()));
            ++f.pc;
            break;

          case Op::kMonitorEnter: {
            // §3.1.1: save the operand stack (and locals) BEFORE entering,
            // so a future rollback can restore them and re-execute.
            MonFrame mf;
            mf.enter_pc = f.pc;
            mf.call_depth = calls.size();
            mf.saved_stack = f.stack;
            mf.saved_locals = f.locals;
            mf.retries = pending_retries;
            pending_retries = 0;
            mf.frame_id = engine.section_enter(
                *machine.monitors.at(static_cast<std::size_t>(in.a)),
                mf.retries);
            frames.push_back(std::move(mf));
            ++cur().pc;
            break;
          }
          case Op::kMonitorExit:
            if (frames.empty()) vm_trap("monitorexit without frame", f.pc);
            engine.section_commit();
            frames.pop_back();
            ++f.pc;
            break;
          case Op::kWait:
            machine.monitors.at(static_cast<std::size_t>(in.a))->wait();
            ++f.pc;
            break;
          case Op::kNotify:
            machine.monitors.at(static_cast<std::size_t>(in.a))->notify_one();
            ++f.pc;
            break;
          case Op::kNotifyAll:
            machine.monitors.at(static_cast<std::size_t>(in.a))->notify_all();
            ++f.pc;
            break;

          case Op::kJump:
            f.pc = static_cast<std::size_t>(in.a);
            break;
          case Op::kJz:
            f.pc = (pop() == 0) ? static_cast<std::size_t>(in.a) : f.pc + 1;
            break;
          case Op::kThrow: {
            if (!dispatch_user(in.a)) {
              result.escaped_exception = in.a;
              result.stack = cur().stack;
              result.locals = cur().locals;
              return result;
            }
            break;
          }

          case Op::kCall: {
            const Program* callee =
                machine.programs.at(static_cast<std::size_t>(in.a));
            const auto nargs = static_cast<std::size_t>(in.b);
            CallFrame nf{callee, 0, {}, std::vector<Word>(callee->locals, 0)};
            RVK_CHECK_MSG(nargs <= nf.locals.size(),
                          "more call arguments than callee locals");
            for (std::size_t i = nargs; i > 0; --i) nf.locals[i - 1] = pop();
            // The caller's pc stays AT the call site until the callee
            // returns (JVM-style): user exceptions propagating out of the
            // callee must match handler ranges covering the call site.
            calls.push_back(std::move(nf));
            break;
          }
          case Op::kRet: {
            if (calls.size() == 1) vm_trap("ret from root method", f.pc);
            const Word rv = f.stack.empty() ? 0 : f.stack.back();
            calls.pop_back();
            push(rv);
            ++cur().pc;  // step past the call site
            break;
          }

          case Op::kYield:
            sched->yield_point();
            ++f.pc;
            break;
          case Op::kSleep:
            sched->sleep_for(static_cast<std::uint64_t>(in.a));
            ++f.pc;
            break;
          case Op::kNative:
            engine.pin_current_frames(core::PinReason::kNativeCall);
            ++f.pc;
            break;

          case Op::kHalt:
            RVK_CHECK_MSG(frames.empty(), "halt with monitors held");
            RVK_CHECK_MSG(calls.size() == 1, "halt outside the root method");
            result.halted = true;
            result.stack = cur().stack;
            result.locals = cur().locals;
            return result;
        }
      }
    } catch (core::RollbackException& e) {
      // The injected rollback handlers of §3.1.1, iteratively: every frame
      // that is NOT the target aborts and conceptually re-throws outward...
      while (!frames.empty() && frames.back().frame_id != e.target_frame()) {
        engine.section_abort();
        frames.pop_back();
      }
      if (frames.empty()) {
        // The target is an ENCLOSING section entered outside this program
        // (execute() was called from within an engine.synchronized body):
        // every VM frame has aborted; propagate to the enclosing scope's
        // handler, exactly like an inner BCEL handler re-throwing outward.
        throw;
      }
      // ... and the target frame aborts, discards method activations
      // entered after its monitorenter, restores the saved operand stack
      // and locals, and transfers control back to the monitorenter.
      MonFrame target = std::move(frames.back());
      frames.pop_back();
      engine.section_abort();
      ++target.retries;
      ++result.rollbacks;
      RVK_CHECK_MSG(target.call_depth <= calls.size(),
                    "rollback target above the live call stack");
      calls.resize(target.call_depth);
      CallFrame& f = cur();
      f.stack = std::move(target.saved_stack);
      f.locals = std::move(target.saved_locals);
      f.pc = target.enter_pc;
      pending_retries = target.retries;
      finish_pending = true;  // run finish_rollback inside the next try
      finish_e = e;
      finish_retries = target.retries;
    }
  }
}

}  // namespace rvk::vm
