// Open-loop macro benchmark: SLO-tiered traffic against the bank service,
// swept to saturation under all four inversion-avoidance protocols
// (DESIGN.md §15).
//
// Unlike macro_bank (a closed-loop population whose threads cannot arrive
// while their previous request is still queued — coordinated omission),
// this driver injects a precomputed arrival schedule on the virtual clock
// and never waits: latency is charged from the *scheduled* arrival tick, so
// queueing delay shows up in the tails where it belongs.  Each tier maps to
// a scheduler priority and an entry deadline enforced with abortable
// acquisition (§14) — a missed SLO is a counted give-up, never a hang, so
// the sweep can cross the saturation knee safely.
//
// Sweep: offered load rho ∈ {50, 80, 95}% of the calibrated service
// capacity, Poisson arrivals, for each protocol; plus one bursty (MMPP-2)
// point at mean rho=80% to show what burst clustering does to the tails.
// Everything runs on virtual ticks with a fixed seed: the numbers are
// deterministic and byte-identical across platforms (integer-only arrival
// sampling — see svc/arrivals.hpp).
//
// Knobs: RVK_SEED (schedule + workload seed), RVK_MACRO_SMOKE=1 (CI: one
// rho=80 Poisson point per protocol, shorter window), RVK_MACRO_DURATION
// (injection window in ticks), RVK_MACRO_JSON (registry export path,
// default BENCH_macro_open.json).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "svc/driver.hpp"

namespace {

using namespace rvk;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10) : fallback;
}

// Mean synchronized-section length over the default tier mix, in ticks
// (one yield point per transfer step): sum(weight*ops)/sum(weight).  The
// virtual clock serializes sections across shards — one tick per yield
// globally — so the service saturates at ~1 request per kMeanOps ticks and
// rho is offered_rate * kMeanOps.
constexpr std::uint64_t kMeanOps = 88;  // (2*4 + 3*24 + 5*160) / 10

std::uint32_t rate_for_rho(unsigned rho_pct) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(svc::kProbOne) * rho_pct) /
      (100 * kMeanOps));
}

struct Point {
  std::string label;           // "rho=80" | "bursty"
  svc::ArrivalConfig arrivals; // tier_weights filled in by the driver
};

void print_point(const svc::OpenLoopResult& r, svc::Protocol proto,
                 const std::string& label,
                 const std::vector<svc::TierSpec>& tiers) {
  std::printf("  %-11s %-8s arrivals=%llu span=%llu rollbacks=%llu\n",
              svc::protocol_name(proto), label.c_str(),
              static_cast<unsigned long long>(r.arrivals),
              static_cast<unsigned long long>(r.total_ticks),
              static_cast<unsigned long long>(r.rollbacks));
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    std::printf("    %-6s %s\n", r.recorder.name(t).c_str(),
                r.recorder.summary(t, r.total_ticks).c_str());
  }
}

}  // namespace

int main() {
  const std::uint64_t seed = env_u64("RVK_SEED", 42);
  const bool smoke = env_u64("RVK_MACRO_SMOKE", 0) != 0;
  const std::uint64_t duration =
      env_u64("RVK_MACRO_DURATION", smoke ? 20'000 : 40'000);
  const char* json_env = std::getenv("RVK_MACRO_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env
                                               : "BENCH_macro_open.json";

  const std::vector<svc::TierSpec> tiers = svc::default_tiers();

  std::vector<Point> points;
  if (smoke) {
    svc::ArrivalConfig a;
    a.kind = svc::ArrivalKind::kPoisson;
    a.rate = rate_for_rho(80);
    points.push_back({"rho=80", a});
  } else {
    for (unsigned rho : {50u, 80u, 95u}) {
      svc::ArrivalConfig a;
      a.kind = svc::ArrivalKind::kPoisson;
      a.rate = rate_for_rho(rho);
      points.push_back({"rho=" + std::to_string(rho), a});
    }
    // Bursty point: same mean load as rho=80, delivered as geometric
    // on/off bursts (duty cycle 1/2, burst rate 1.5x the mean).
    svc::ArrivalConfig b;
    b.kind = svc::ArrivalKind::kBursty;
    b.burst_rate = rate_for_rho(120);
    b.idle_rate = rate_for_rho(40);
    b.burst_len = 2000;
    b.idle_len = 2000;
    points.push_back({"bursty", b});
    // Surge point: a 20x thundering herd for the whole window.  Peak
    // in-flight climbs past the old 4096 admission cap (entry deadlines
    // bound the queue well below the naive arrivals-minus-capacity
    // estimate, hence the big multiplier), inside the raised 16384 one —
    // every arrival is admitted and either completes or gives up on its
    // deadline; nothing is shed.  Exercises the O(max_in_flight) memory
    // bound and deadline accounting at depth.
    svc::ArrivalConfig s;
    s.kind = svc::ArrivalKind::kPoisson;
    s.rate = rate_for_rho(2000);
    points.push_back({"surge", s});
  }

  std::printf(
      "macro_open: open-loop SLO-tiered traffic vs the bank service\n"
      "  tiers: gold(prio 9, ddl 1500, 4 ops) silver(prio 6, ddl 3000, "
      "24 ops) bronze(prio 3, ddl 12000, 160 ops)\n"
      "  capacity ~1 req / %llu ticks; window %llu ticks; seed %llu%s\n\n",
      static_cast<unsigned long long>(kMeanOps),
      static_cast<unsigned long long>(duration),
      static_cast<unsigned long long>(seed), smoke ? " [smoke]" : "");

  obs::Registry reg;
  for (const svc::Protocol proto : svc::kAllProtocols) {
    for (const Point& pt : points) {
      svc::OpenLoopConfig cfg;
      cfg.arrivals = pt.arrivals;
      cfg.tiers = tiers;
      cfg.service.protocol = proto;
      cfg.duration = duration;
      cfg.seed = seed;
      const svc::OpenLoopResult r = svc::run_open_loop(cfg);
      print_point(r, proto, pt.label, tiers);

      const std::string prefix =
          std::string("macro_open/") + svc::protocol_name(proto) + "/" +
          pt.label + "/";
      r.recorder.publish(reg, prefix);
      reg.counter(prefix + "arrivals") += r.arrivals;
      reg.counter(prefix + "rollbacks") += r.rollbacks;
      reg.set_max(prefix + "max_in_flight", r.max_in_flight_seen);
    }
    std::printf("\n");
  }

  {
    std::ofstream os(json_path);
    RVK_CHECK_MSG(os.good(), "cannot open macro_open JSON export path");
    reg.write_json(os, {{"bench", "macro_open"},
                        {"seed", std::to_string(seed)},
                        {"duration", std::to_string(duration)},
                        {"smoke", smoke ? "1" : "0"}});
  }
  std::printf("wrote %s\n\n", json_path.c_str());

  std::printf(
      "Expected shape: gold p99/p999 rank blocking > inheritance > ceiling\n"
      "> revocation, and the gap widens with load — blocking lets a bronze\n"
      "section sit in front of gold for ~its full length, inheritance and\n"
      "ceiling bound the wait by the remainder of one boosted section, and\n"
      "revocation preempts the section outright, holding gold p99 near its\n"
      "own service cost at every rho.  The bill goes to bronze: under\n"
      "revocation its tails stretch by the re-executed work (rollbacks > 0,\n"
      "span grows past the window) and at rho=95 bronze give-ups appear —\n"
      "counted, not hung.  No other protocol misses its entry deadlines at\n"
      "these calibrations.  The bursty point matches rho=80's mean load\n"
      "with clumpier queueing.  The surge point (20x overload) drives\n"
      "peak in-flight to ~6k — inside the 16384 admission cap, so sheds\n"
      "stay 0 and the overload resolves entirely as give-ups vs\n"
      "completions per tier SLO.  All numbers are virtual ticks and\n"
      "deterministic for a fixed RVK_SEED.\n");
  return 0;
}
