// Barrier micro-costs (§1.1's "fast-path test on every non-local update"):
//  * write fast path  — store outside any synchronized section
//  * write slow path  — store inside a section (fast-path test + log append)
//  * unlogged store   — the barrier the compiler would have elided
//  * read fast path   — clean object, one mark test
// These are the per-operation overheads the paper's modified VM charges on
// all threads; Figures 5–8's "influence of different read-write ratios … is
// small" claim rests on them being a few nanoseconds.
//
// The *Analyzed variants rerun the same loops with the revocation-safety
// analyzer installed (EngineConfig::analyze).  Their deltas price the
// checker: lockset + bypass lint per traced access, one extra field test
// per yield point.  The plain variants are the analyzer-off regression
// baseline — they must not move when the analyzer code is linked in,
// because every hook is a null-checked function pointer that stays null.
//
// The *Obs variants rerun the write slow path and the yield point with the
// observability recorder installed (src/obs/).  Neither path carries an obs
// hook — the recorder pays only at dispatch/switch, monitor, engine, and
// undo-log lifecycle events — so these must match their obs-off twins
// within noise; they exist to catch a hook creeping onto the per-operation
// fast paths.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "obs/recorder.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

// Runs `body` on a green thread inside a fresh scheduler (barriers consult
// the current VThread).
template <typename F>
void on_green_thread(F&& body) {
  rt::Scheduler sched;
  sched.spawn("bench", rt::kNormPriority, [&] { body(sched); });
  sched.run();
}

void BM_WriteOutsideSection(benchmark::State& state) {
  on_green_thread([&](rt::Scheduler&) {
    heap::Heap h;
    heap::HeapObject* o = h.alloc("o", 1);
    std::uint64_t v = 0;
    for (auto _ : state) {
      o->set_word(0, ++v);
      benchmark::ClobberMemory();
    }
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteOutsideSection);

void BM_WriteInsideSection(benchmark::State& state) {
  rt::Scheduler sched;
  core::Engine eng(sched);
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(*m, [&] {
      rt::VThread* t = sched.current_thread();
      std::uint64_t v = 0;
      for (auto _ : state) {
        o->set_word(0, ++v);
        if (t->undo_log.size() >= (1u << 18)) {
          // keep the log bounded; truncation cost is amortized away
          t->undo_log.rollback_to(0);
        }
        benchmark::ClobberMemory();
      }
      t->undo_log.rollback_to(0);
    });
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteInsideSection);

void BM_WriteInsideSectionObs(benchmark::State& state) {
  // Write slow path with the obs recorder live.  The store/log-append loop
  // has no obs hook (the only obs event this loop ever causes is one
  // undo-replay record per 2^18 stores, from the log-bounding rollback), so
  // the delta vs BM_WriteInsideSection must be noise.
  const bool owned = obs::Recorder::active() == nullptr;
  if (owned) obs::Recorder::install();
  rt::Scheduler sched;
  core::Engine eng(sched);
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(*m, [&] {
      rt::VThread* t = sched.current_thread();
      std::uint64_t v = 0;
      for (auto _ : state) {
        o->set_word(0, ++v);
        if (t->undo_log.size() >= (1u << 18)) {
          t->undo_log.rollback_to(0);
        }
        benchmark::ClobberMemory();
      }
      t->undo_log.rollback_to(0);
    });
  });
  sched.run();
  if (owned) obs::Recorder::uninstall();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteInsideSectionObs);

void BM_WriteUnlogged(benchmark::State& state) {
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  std::uint64_t v = 0;
  for (auto _ : state) {
    o->set_word_unlogged(0, ++v);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteUnlogged);

void BM_ReadCleanObject(benchmark::State& state) {
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  o->set_word_unlogged(0, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(o->get_word(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReadCleanObject);

void BM_ReadOwnSpeculation(benchmark::State& state) {
  // Reader == writer: the tracked-read hook runs but pins nothing.
  rt::Scheduler sched;
  core::Engine eng(sched);
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(*m, [&] {
      o->set_word(0, 7);  // marks the object
      for (auto _ : state) {
        benchmark::DoNotOptimize(o->get_word(0));
      }
      sched.current_thread()->undo_log.rollback_to(0);
    });
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReadOwnSpeculation);

void BM_YieldPointNoSwitch(benchmark::State& state) {
  rt::SchedulerConfig cfg;
  cfg.quantum = 1 << 30;  // never expires: pure yield-point cost
  rt::Scheduler sched(cfg);
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      sched.yield_point();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_YieldPointNoSwitch);

void BM_YieldPointObs(benchmark::State& state) {
  // Yield point with the obs recorder live.  The yield point deliberately
  // carries NO obs hook (activity is reconstructed from dispatch/switch
  // events), and with an unexpiring quantum no switch ever happens — this
  // must match BM_YieldPointNoSwitch within noise.
  const bool owned = obs::Recorder::active() == nullptr;
  if (owned) obs::Recorder::install();
  rt::SchedulerConfig cfg;
  cfg.quantum = 1 << 30;
  rt::Scheduler sched(cfg);
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      sched.yield_point();
    }
  });
  sched.run();
  if (owned) obs::Recorder::uninstall();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_YieldPointObs);

core::EngineConfig analyzed_config() {
  core::EngineConfig cfg;
  cfg.analyze = true;
  return cfg;
}

void BM_WriteOutsideSectionAnalyzed(benchmark::State& state) {
  // Analyzer cost on the write fast path: the barrier itself is unchanged,
  // the trace hook feeds one single-owner (kExclusive) lockset update.
  rt::Scheduler sched;
  core::Engine eng(sched, analyzed_config());
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  sched.spawn("bench", rt::kNormPriority, [&] {
    std::uint64_t v = 0;
    for (auto _ : state) {
      o->set_word(0, ++v);
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteOutsideSectionAnalyzed);

void BM_WriteInsideSectionAnalyzed(benchmark::State& state) {
  // Analyzer cost on the write slow path: lockset update plus the
  // barrier-bypass lint (undo-log tail must cover the stored location).
  rt::Scheduler sched;
  core::Engine eng(sched, analyzed_config());
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(*m, [&] {
      rt::VThread* t = sched.current_thread();
      std::uint64_t v = 0;
      for (auto _ : state) {
        o->set_word(0, ++v);
        if (t->undo_log.size() >= (1u << 18)) {
          t->undo_log.rollback_to(0);
        }
        benchmark::ClobberMemory();
      }
      t->undo_log.rollback_to(0);
    });
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteInsideSectionAnalyzed);

void BM_YieldPointAnalyzed(benchmark::State& state) {
  // Yield point with region marking live: one field test of the thread's
  // forbidden-region depth (zero here, so the probe never fires).
  rt::SchedulerConfig cfg;
  cfg.quantum = 1 << 30;
  rt::Scheduler sched(cfg);
  core::Engine eng(sched, analyzed_config());
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      sched.yield_point();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_YieldPointAnalyzed);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::printf(
      "\nExpected shape: writes outside a section cost a few ns (fast-path\n"
      "test only); inside a section the log append adds a few ns more;\n"
      "unlogged stores and clean reads are near the raw memory op.  The\n"
      "*Analyzed variants price the checker (lockset + lint per access, one\n"
      "field test per yield point).  The *Obs variants must match their\n"
      "obs-off twins within noise: neither the barrier loops nor the yield\n"
      "point carries an obs hook.\n");
  return 0;
}
