// Ablation: revocation vs the classical protocols (§5) — priority
// inheritance and priority ceiling — under a strict-priority scheduler,
// where inherited priorities actually change dispatch.
//
// Scenario: the canonical inversion triangle.  A low-priority thread takes
// the lock; medium-priority CPU hogs then starve it; a high-priority thread
// blocks on the lock.  Reported: ticks until the high-priority thread gets
// through the lock (its "inversion window"), per protocol.
#include <cstdio>
#include <memory>

#include "core/engine.hpp"
#include "monitor/priority_ceiling.hpp"
#include "monitor/priority_inheritance.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

struct Outcome {
  std::uint64_t hi_latency;
  std::uint64_t total;
  std::uint64_t rollbacks;
};

constexpr int kSectionLen = 500;
constexpr int kHogs = 3;
constexpr int kHogWork = 4000;

// protocol: 0=blocking, 1=inheritance, 2=ceiling, 3=revocation
Outcome run(int protocol) {
  rt::SchedulerConfig cfg;
  cfg.quantum = 10;
  cfg.strict_priority = true;
  rt::Scheduler sched(cfg);

  std::unique_ptr<core::Engine> engine;
  monitor::InheritanceDomain inherit_dom;
  monitor::CeilingDomain ceiling_dom;
  std::unique_ptr<monitor::MonitorBase> mon;
  core::RevocableMonitor* rmon = nullptr;
  switch (protocol) {
    case 0:
      mon = std::make_unique<monitor::BlockingMonitor>("m");
      break;
    case 1:
      mon = std::make_unique<monitor::PriorityInheritanceMonitor>(
          "m", inherit_dom);
      break;
    case 2:
      mon = std::make_unique<monitor::PriorityCeilingMonitor>("m", 9,
                                                              ceiling_dom);
      break;
    case 3:
      engine = std::make_unique<core::Engine>(sched);
      rmon = engine->make_monitor("m");
      break;
  }

  std::uint64_t hi_blocked_at = 0, hi_through_at = 0;

  sched.spawn("lo", 2, [&] {
    auto section = [&] {
      for (int i = 0; i < kSectionLen; ++i) sched.yield_point();
    };
    if (rmon != nullptr) {
      engine->synchronized(*rmon, section);
    } else {
      mon->acquire();
      section();
      mon->release();
    }
  });
  for (int k = 0; k < kHogs; ++k) {
    sched.spawn("mid" + std::to_string(k), 5, [&] {
      sched.sleep_for(10);
      for (int i = 0; i < kHogWork; ++i) sched.yield_point();
    });
  }
  sched.spawn("hi", 9, [&] {
    sched.sleep_for(30);
    hi_blocked_at = sched.now();
    if (rmon != nullptr) {
      engine->synchronized(*rmon, [] {});
    } else {
      mon->acquire();
      mon->release();
    }
    hi_through_at = sched.now();
  });

  sched.run();
  Outcome o{};
  o.hi_latency = hi_through_at - hi_blocked_at;
  o.total = sched.now();
  o.rollbacks = engine ? engine->stats().rollbacks_completed : 0;
  return o;
}

}  // namespace

int main() {
  const char* names[] = {"blocking (no remedy)", "priority inheritance",
                         "priority ceiling", "revocation (this paper)"};
  std::printf(
      "ablation_baselines: inversion triangle — lo holds lock (%d ticks of "
      "work),\n%d mid hogs (%d ticks each), hi arrives at t=30; strict-"
      "priority scheduler\n\n",
      kSectionLen, kHogs, kHogWork);
  std::printf("%-26s %16s %12s %10s\n", "protocol", "hi lock latency",
              "total ticks", "rollbacks");
  for (int p = 0; p < 4; ++p) {
    const Outcome o = run(p);
    std::printf("%-26s %16llu %12llu %10llu\n", names[p],
                static_cast<unsigned long long>(o.hi_latency),
                static_cast<unsigned long long>(o.total),
                static_cast<unsigned long long>(o.rollbacks));
  }
  std::printf(
      "\nExpected shape: blocking suffers the full hog window (unbounded\n"
      "inversion); inheritance/ceiling bound it by the remaining section\n"
      "length; revocation cuts even that to the next yield point, at the\n"
      "cost of re-executing the victim's section.\n");
  return 0;
}
