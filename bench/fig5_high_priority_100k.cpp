// Figure 5: "Total time for high-priority threads, 100K iterations".
// Three panels (2hi+8lo, 5hi+5lo, 8hi+2lo), write ratio 0–100%, MODIFIED vs
// UNMODIFIED, normalized to unmodified @ 100% reads.
#include "fig_common.hpp"

int main() {
  rvk::harness::FigureSpec spec;
  spec.id = "fig5";
  spec.title = "Total time for high-priority threads, 100K iterations";
  spec.overall = false;
  spec.high_iters = 4'000;  // paper 100'000, scaled 1/25 (see env.hpp)
  return rvk::bench::run_figure_main(spec, /*paper_high_iters=*/100'000);
}
