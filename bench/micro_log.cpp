// Micro-costs of the undo log: append (the write-barrier slow path's core)
// and reverse replay (the rollback cost charged to revoked threads).
#include <benchmark/benchmark.h>

#include <vector>

#include "log/undo_log.hpp"

namespace {

using rvk::log::EntryKind;
using rvk::log::UndoLog;
using rvk::log::Word;

void BM_LogAppend(benchmark::State& state) {
  UndoLog log(1 << 20);
  std::vector<Word> slots(256, 0);
  std::size_t i = 0;
  for (auto _ : state) {
    Word* addr = &slots[i & 255];
    log.record(EntryKind::kObjectField, addr, *addr, slots.data(),
               static_cast<std::uint32_t>(i & 255));
    if (log.size() >= (1u << 20)) log.discard_all();
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogAppend);

void BM_LogRollback(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  UndoLog log(n);
  std::vector<Word> slots(256, 0);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) {
      Word* addr = &slots[i & 255];
      log.record(EntryKind::kArrayElement, addr, *addr, slots.data(),
                 static_cast<std::uint32_t>(i & 255));
      *addr = i;
    }
    state.ResumeTiming();
    log.rollback_to(0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel("words undone per rollback: " + std::to_string(n));
}
BENCHMARK(BM_LogRollback)->Arg(64)->Arg(1024)->Arg(16384);

void BM_LogDiscardAll(benchmark::State& state) {
  const std::size_t n = 1024;
  UndoLog log(n);
  std::vector<Word> slots(16, 0);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) {
      log.record(EntryKind::kObjectField, &slots[i & 15], 0, nullptr, 0);
    }
    state.ResumeTiming();
    log.discard_all();  // the commit path: O(1) truncation
  }
}
BENCHMARK(BM_LogDiscardAll);

}  // namespace

BENCHMARK_MAIN();
