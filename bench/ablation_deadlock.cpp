// Ablation: deadlock resolution machinery — eager (at-acquire) vs lazy
// (stall-hook) detection, and the deadlock-victim backoff that prevents
// the paper's noted livelock hazard.
#include <cstdio>

#include "core/engine.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

struct Outcome {
  std::uint64_t total_ticks;
  std::uint64_t detected;
  std::uint64_t broken;
  std::uint64_t rollbacks;
  bool completed;
};

// `rounds` deadlock-prone encounters: two threads repeatedly cross-acquire.
Outcome run(bool eager, std::uint64_t backoff, int rounds) {
  rt::SchedulerConfig scfg;
  scfg.on_stall = rt::SchedulerConfig::OnStall::kReturn;
  rt::Scheduler sched(scfg);
  core::EngineConfig cfg;
  cfg.deadlock_at_acquire = eager;
  cfg.deadlock_backoff_ticks = backoff;
  core::Engine engine(sched, cfg);
  core::RevocableMonitor* l1 = engine.make_monitor("L1");
  core::RevocableMonitor* l2 = engine.make_monitor("L2");

  int done = 0;
  auto worker = [&](core::RevocableMonitor* a, core::RevocableMonitor* b) {
    for (int r = 0; r < rounds; ++r) {
      engine.synchronized(*a, [&] {
        for (int i = 0; i < 60; ++i) sched.yield_point();
        engine.synchronized(*b, [&] {
          for (int i = 0; i < 10; ++i) sched.yield_point();
        });
      });
    }
    ++done;
  };
  sched.spawn("T1", 5, [&] { worker(l1, l2); });
  sched.spawn("T2", 5, [&] { worker(l2, l1); });
  sched.run();

  Outcome o{};
  o.total_ticks = sched.now();
  o.detected = engine.stats().deadlocks_detected;
  o.broken = engine.stats().deadlocks_broken;
  o.rollbacks = engine.stats().rollbacks_completed;
  o.completed = (done == 2) && !sched.stalled();
  return o;
}

}  // namespace

int main() {
  constexpr int kRounds = 20;
  std::printf("ablation_deadlock: %d cross-acquire rounds per thread\n\n",
              kRounds);
  std::printf("%-34s %10s %9s %8s %10s %10s\n", "configuration", "ticks",
              "detected", "broken", "rollbacks", "completed");
  struct Cfg {
    const char* name;
    bool eager;
    std::uint64_t backoff;
  };
  const Cfg cfgs[] = {
      {"eager detection, backoff 64", true, 64},
      {"eager detection, backoff 8", true, 8},
      {"eager detection, backoff 512", true, 512},
      {"lazy (stall hook), backoff 64", false, 64},
  };
  for (const Cfg& c : cfgs) {
    const Outcome o = run(c.eager, c.backoff, kRounds);
    std::printf("%-34s %10llu %9llu %8llu %10llu %10s\n", c.name,
                static_cast<unsigned long long>(o.total_ticks),
                static_cast<unsigned long long>(o.detected),
                static_cast<unsigned long long>(o.broken),
                static_cast<unsigned long long>(o.rollbacks),
                o.completed ? "yes" : "NO");
  }
  std::printf(
      "\nExpected shape: all configurations complete (no livelock); eager\n"
      "detection resolves cycles without waiting for a full stall; larger\n"
      "backoffs waste idle ticks, tiny ones risk repeated re-collisions.\n");
  return 0;
}
