// Ablation: cost of the §2.2 JMM-consistency guard (dependency-tracking
// read barriers + writer marks).  The paper's future work asks to "evaluate
// … the impact of our enforced non-revocability"; this bench measures the
// guard's overhead on the §4.1 workload, where it never actually pins
// (every access is monitor-mediated) — i.e. its pure bookkeeping cost.
#include <chrono>
#include <cstdio>

#include "harness/workload.hpp"

int main() {
  using namespace rvk;
  using namespace rvk::harness;

  WorkloadParams base;
  base.high_threads = 2;
  base.low_threads = 8;
  base.sections_per_thread = 25;
  base.high_iters = 4'000;
  base.low_iters = 20'000;

  std::printf("ablation_jmm_guard: 2hi+8lo; wall seconds per configuration\n\n");
  std::printf("%-10s %16s %16s %10s\n", "write%", "guard ON (s)",
              "guard OFF (s)", "overhead");
  for (unsigned wp : {0u, 50u, 100u}) {
    WorkloadParams on = base;
    on.write_percent = wp;
    on.engine.jmm_guard = true;
    WorkloadParams off = on;
    off.engine.jmm_guard = false;

    // One warm-up + three measured runs each.
    double t_on = 0, t_off = 0;
    (void)run_workload(VmKind::kModified, on);
    (void)run_workload(VmKind::kModified, off);
    for (int i = 0; i < 3; ++i) {
      t_on += run_workload(VmKind::kModified, on).overall_elapsed_s;
      t_off += run_workload(VmKind::kModified, off).overall_elapsed_s;
    }
    t_on /= 3;
    t_off /= 3;
    std::printf("%-10u %16.4f %16.4f %9.1f%%\n", wp, t_on, t_off,
                (t_on / t_off - 1.0) * 100.0);
  }
  std::printf(
      "\nExpected shape: negligible at 0%% writes (reads pay one compare),\n"
      "growing to ~10-20%% at 100%% writes (marks are maintained per logged\n"
      "store and every read of a marked object takes the checking path).\n");
  return 0;
}
