// Uncontended-path micro-costs (DESIGN.md §11): what one thread pays to
// enter and exit a synchronized section nobody else wants.
//
//  * ThinLock            — the Jikes-style baseline: header-word CAS-free
//                          acquire/release, no frames, no revocability
//  * SectionHeavy        — RevocableMonitor section with bias OFF: the
//                          pre-§11 path (monitor queue bookkeeping + frame
//                          push + outermost-commit log discard every time)
//  * SectionBiased       — bias ON: repeat acquires by the same thread take
//                          the biased grant and the frame stays lazy, so an
//                          empty section is a handful of scalar stores
//  * SectionBiasedWrite  — bias ON with one logged store per section: the
//                          first write materialises the frame, pricing the
//                          lazy-to-real transition
//
// The *Obs variants rerun the section loops with the observability recorder
// installed.  Recording is NOT free for sections — the engine deliberately
// routes biased entries through the slow path while a recorder is live so
// every section is visible in the trace — and these twins price exactly
// that.  The claim that matters for the fast path is the reverse one: with
// no recorder installed the obs seams cost one predicted branch on a cached
// flag, which is what SectionBiased (obs off) measures.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "monitor/thin_lock.hpp"
#include "obs/recorder.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

core::EngineConfig bias_off_config() {
  core::EngineConfig cfg;
  cfg.bias = false;
  return cfg;
}

void BM_ThinLockAcquireRelease(benchmark::State& state) {
  rt::Scheduler sched;
  monitor::ThinLock lock("thin");
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      lock.acquire();
      lock.release();
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ThinLockAcquireRelease);

void BM_SectionHeavy(benchmark::State& state) {
  rt::Scheduler sched;
  core::Engine eng(sched, bias_off_config());
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      eng.synchronized(*m, [] {});
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SectionHeavy);

void BM_SectionBiased(benchmark::State& state) {
  rt::Scheduler sched;
  core::Engine eng(sched);  // bias on by default
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(*m, [] {});  // latch the bias outside the timed loop
    for (auto _ : state) {
      eng.synchronized(*m, [] {});
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SectionBiased);

void BM_ObjectSectionBiased(benchmark::State& state) {
  // The lock-word path (DESIGN.md §13): synchronized on a HeapObject, whose
  // monitor lives behind its header word.  Steady state is the inflated-word
  // slot lookup plus the same biased grant as SectionBiased — this row shows
  // what object-granularity locking adds over a pre-made monitor.
  rt::Scheduler sched;
  core::Engine eng(sched);
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(o, [] {});  // inflate the lock word + latch the bias
    for (auto _ : state) {
      eng.synchronized(o, [] {});
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObjectSectionBiased);

void BM_SectionBiasedWrite(benchmark::State& state) {
  // One logged store per section: entry is still the biased grant, but the
  // store materialises the frame and the commit discards one log entry.
  rt::Scheduler sched;
  core::Engine eng(sched);
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(*m, [] {});
    std::uint64_t v = 0;
    for (auto _ : state) {
      eng.synchronized(*m, [&] { o->set_word(0, ++v); });
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SectionBiasedWrite);

void BM_SectionHeavyObs(benchmark::State& state) {
  const bool owned = obs::Recorder::active() == nullptr;
  if (owned) obs::Recorder::install();
  rt::Scheduler sched;
  core::Engine eng(sched, bias_off_config());
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      eng.synchronized(*m, [] {});
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  if (owned) obs::Recorder::uninstall();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SectionHeavyObs);

void BM_SectionBiasedObs(benchmark::State& state) {
  // With a recorder live the engine takes the recorded slow path even for
  // biased acquires (the bias word still grants there); the delta vs
  // BM_SectionBiased is the full price of observing every section event.
  const bool owned = obs::Recorder::active() == nullptr;
  if (owned) obs::Recorder::install();
  rt::Scheduler sched;
  core::Engine eng(sched);
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(*m, [] {});
    for (auto _ : state) {
      eng.synchronized(*m, [] {});
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  if (owned) obs::Recorder::uninstall();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SectionBiasedObs);

// Hand-rolled acceptance ratio (printed in the footer): ns per empty
// uncontended section with bias on vs off, same engine config either side.
double time_empty_sections(bool bias) {
  core::EngineConfig cfg;
  cfg.bias = bias;
  rt::Scheduler sched;
  core::Engine eng(sched, cfg);
  core::RevocableMonitor* m = eng.make_monitor("m");
  constexpr int kWarmup = 10000;
  constexpr int kReps = 400000;
  double ns = 0.0;
  sched.spawn("ratio", rt::kNormPriority, [&] {
    for (int i = 0; i < kWarmup; ++i) eng.synchronized(*m, [] {});
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) eng.synchronized(*m, [] {});
    const auto t1 = std::chrono::steady_clock::now();
    ns = std::chrono::duration<double, std::nano>(t1 - t0).count() / kReps;
  });
  sched.run();
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  const double heavy_ns = time_empty_sections(false);
  const double biased_ns = time_empty_sections(true);
  std::printf(
      "\nuncontended_section_ns{bias=off}: %.1f\n"
      "uncontended_section_ns{bias=on}:  %.1f\n"
      "bias_speedup: %.2fx\n",
      heavy_ns, biased_ns, heavy_ns / biased_ns);
  std::printf(
      "\nExpected shape: ThinLock is the floor.  SectionBiased sits within a\n"
      "small factor of it (biased grant + lazy frame: no queue bookkeeping,\n"
      "no log discard) and beats SectionHeavy by >= 2x — bias_speedup above\n"
      "is the acceptance ratio.  ObjectSectionBiased rides the same biased\n"
      "grant behind the object's lock word, paying one extra table lookup\n"
      "to resolve the word.  SectionBiasedWrite adds the one-time frame\n"
      "materialisation plus a log append.  The *Obs twins are deliberately\n"
      "slower: a live recorder routes sections down the recorded slow path;\n"
      "with no recorder installed the obs seams cost one predicted branch,\n"
      "which is already included in the obs-off numbers.\n");
  return 0;
}
