// Ablation: undo-log deduplication (paper §6 future work, implemented in
// log/dedup.hpp).  Sweeps the working-set size of a write-heavy section:
// dedup bounds the log by the number of DISTINCT locations rather than the
// number of stores, turning log cost from O(stores) into O(working set).
#include <chrono>
#include <cstdio>

#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

struct Outcome {
  double seconds;
  std::uint64_t log_appends;
};

Outcome run(bool dedup, std::size_t working_set, int stores) {
  const auto t0 = std::chrono::steady_clock::now();
  rt::Scheduler sched;
  core::EngineConfig cfg;
  cfg.dedup_logging = dedup;
  core::Engine engine(sched, cfg);
  heap::Heap h;
  heap::HeapArray<std::uint64_t>* arr =
      h.alloc_array<std::uint64_t>(working_set);
  core::RevocableMonitor* m = engine.make_monitor("m");
  sched.spawn("writer", rt::kNormPriority, [&] {
    for (int section = 0; section < 20; ++section) {
      engine.synchronized(*m, [&] {
        for (int i = 0; i < stores; ++i) {
          arr->set(static_cast<std::size_t>(i) % working_set,
                   static_cast<std::uint64_t>(i));
          sched.yield_point();
        }
      });
    }
  });
  sched.run();
  Outcome o;
  o.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  o.log_appends = engine.stats().log_appends;
  return o;
}

}  // namespace

int main() {
  constexpr int kStores = 50000;
  std::printf(
      "ablation_dedup: 20 sections x %d stores per section, varying the\n"
      "working set (distinct locations written)\n\n",
      kStores);
  std::printf("%-14s %16s %16s %14s %14s\n", "working set", "appends (off)",
              "appends (dedup)", "seconds (off)", "seconds (dedup)");
  for (std::size_t ws : {8u, 64u, 1024u, 16384u}) {
    const Outcome off = run(false, ws, kStores);
    const Outcome on = run(true, ws, kStores);
    std::printf("%-14zu %16llu %16llu %14.4f %14.4f\n", ws,
                static_cast<unsigned long long>(off.log_appends),
                static_cast<unsigned long long>(on.log_appends),
                off.seconds, on.seconds);
  }
  std::printf(
      "\nExpected shape: dedup appends == 20 x working set (one entry per\n"
      "location per section) vs 20 x %d without; time savings grow as the\n"
      "working set shrinks relative to the store count.\n",
      kStores);
  return 0;
}
