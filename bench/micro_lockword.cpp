// Monitor storage at object scale (DESIGN.md §13): what a compact lock
// word costs in time along the free→thin→biased→inflated→deflated cycle,
// and what it saves in space when most objects never see contention.
//
//  * LockWordBiasedReacquire — the folded fast path: a released word is
//                              biased to its last owner, so re-acquire is
//                              one load+compare (the ThinLock floor)
//  * LockWordInflateDeflate  — the full cycle every iteration: thin hold,
//                              inflate on demand (Object.wait-style heavy()
//                              access, adopting the thin owner), release,
//                              opportunistic deflation back to biased.
//                              Prices the fat-monitor materialise/destroy
//                              pair that the fast path amortises away
//  * ObjectSyncBiased        — engine section on a HeapObject: monitor_of
//                              resolves the object's lock word, then the
//                              biased grant + lazy frame take over.  The
//                              object carries no monitor until first sync
//  * LockWordBytesPerObject  — the space claim.  N lock words, every
//                              kContendedStride-th inflated to a live
//                              RevocableMonitor; reported "time" is bytes
//                              of monitor state per object (manual-time
//                              encoding, 1 ns == 1 byte) so bench_compare
//                              can gate the memory ratio like any other
//                              series
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/revocable_monitor.hpp"
#include "heap/heap.hpp"
#include "monitor/lock_word.hpp"
#include "monitor/monitor_table.hpp"
#include "monitor/thin_lock.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

// One fat monitor in 1024 objects: a deliberately contention-heavy stand-in
// for "steady state, a handful of monitors are inflated at once" (fig5-8
// run single-digit inflated monitors against thousands of objects).
constexpr std::uint32_t kContendedStride = 1024;

void BM_LockWordBiasedReacquire(benchmark::State& state) {
  rt::Scheduler sched;
  monitor::ThinLock lock("lw-biased");
  sched.spawn("bench", rt::kNormPriority, [&] {
    lock.acquire();
    lock.release();  // leaves the word biased to this thread
    for (auto _ : state) {
      lock.acquire();
      lock.release();
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LockWordBiasedReacquire);

void BM_LockWordInflateDeflate(benchmark::State& state) {
  rt::Scheduler sched;
  monitor::ThinLock lock("lw-cycle");
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      lock.acquire();          // biased/free -> thin
      lock.heavy();            // thin -> inflated (adopts the thin owner)
      lock.release();          // fat release, then deflate -> biased
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LockWordInflateDeflate);

void BM_ObjectSyncBiased(benchmark::State& state) {
  rt::Scheduler sched;
  core::Engine eng(sched);
  heap::Heap h;
  heap::HeapObject* o = h.alloc("o", 1);
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(o, [] {});  // inflate the word + latch the bias
    for (auto _ : state) {
      eng.synchronized(o, [] {});
      benchmark::ClobberMemory();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObjectSyncBiased);

void BM_LockWordBytesPerObject(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rt::Scheduler sched;
  core::Engine eng(sched);  // the veto + RevocableMonitor factory world
  monitor::MonitorTable& table = monitor::MonitorTable::global();
  const monitor::MonitorTable::Factory factory =
      [&eng](std::string name) -> std::unique_ptr<monitor::MonitorBase> {
    return std::make_unique<core::RevocableMonitor>(std::move(name), eng);
  };

  double bytes_per_object = 0.0;
  std::size_t inflated = 0;
  for (auto _ : state) {
    // The object population is modelled by its lock words: ObjectMeta
    // embeds exactly one LockWord, which is the entire per-object monitor
    // footprint this PR adds.
    std::vector<monitor::LockWord> words(n);
    const std::size_t slot_bytes_before = table.slot_bytes();
    inflated = 0;
    for (std::size_t i = 0; i < n; i += kContendedStride) {
      table.inflate(words[i], "lw-bytes", monitor::InflationCause::kObjectSync,
                    factory);
      ++inflated;
    }
    const std::size_t monitor_bytes =
        inflated * sizeof(core::RevocableMonitor) +
        (table.slot_bytes() - slot_bytes_before);
    bytes_per_object =
        (static_cast<double>(n) * sizeof(monitor::LockWord) +
         static_cast<double>(monitor_bytes)) /
        static_cast<double>(n);
    // Manual-time encoding: 1 reported ns == 1 byte of monitor state per
    // object, so the JSON real_time is the gated quantity itself.
    state.SetIterationTime(bytes_per_object * 1e-9);
    for (std::size_t i = 0; i < n; i += kContendedStride) {
      table.release_slot(words[i]);  // quiescent -> destroyed immediately
    }
  }
  const double fat_bytes = static_cast<double>(sizeof(core::RevocableMonitor));
  state.counters["bytes_per_object"] = bytes_per_object;
  state.counters["fat_bytes_per_object"] = fat_bytes;
  state.counters["memory_ratio"] = fat_bytes / bytes_per_object;
  state.counters["inflated_monitors"] = static_cast<double>(inflated);
}
BENCHMARK(BM_LockWordBytesPerObject)
    ->Arg(1 << 10)
    ->Arg(1 << 15)
    ->Arg(1 << 20)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  std::printf(
      "\nExpected shape: LockWordBiasedReacquire is the ThinLock floor (a\n"
      "few ns: one load+compare, two stores).  LockWordInflateDeflate pays\n"
      "a fat-monitor allocation + destruction every iteration and sits two\n"
      "orders of magnitude above it — the cost the fast path amortises\n"
      "away.  ObjectSyncBiased adds the table lookup + biased engine grant\n"
      "on top of the floor.  LockWordBytesPerObject's real_time encodes\n"
      "bytes of monitor state per object (1 ns == 1 byte): with 1 in %u\n"
      "objects contended it settles near sizeof(LockWord) == %zu bytes, so\n"
      "memory_ratio vs one fat monitor per object (%zu bytes) clears 100x\n"
      "at every N in the sweep, including 1M objects.\n",
      kContendedStride, sizeof(monitor::LockWord),
      sizeof(core::RevocableMonitor));
  return 0;
}
