// Figure 7: "Overall time, 100K iterations" — all-threads elapsed time for
// the Figure 5 runs; the modified VM's ~30% average overhead shows here.
#include "fig_common.hpp"

int main() {
  rvk::harness::FigureSpec spec;
  spec.id = "fig7";
  spec.title = "Overall time, 100K iterations";
  spec.overall = true;
  spec.high_iters = 4'000;
  return rvk::bench::run_figure_main(spec, /*paper_high_iters=*/100'000);
}
