// Ablation: the §4.1 micro-benchmark executed as *bytecode* on the vm/
// interpreter vs the native (lambda) section API.  Demonstrates that the
// revocation engine's behaviour is independent of how sections are
// expressed — the scheduling shape (tick clock) is preserved, while the
// wall clock pays interpreter dispatch on top.
#include <chrono>
#include <cstdio>

#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "rt/scheduler.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace rvk;

struct Outcome {
  std::uint64_t hi_ticks;
  std::uint64_t rollbacks;
  double seconds;
};

constexpr int kSections = 12;
constexpr int kLoIters = 8000;
constexpr int kHiIters = 1600;
constexpr int kQuantum = 8000;
constexpr int kPause = 12000;

// The interpreter executes ~16 instructions (each one a yield point = one
// tick) per workload operation; the timing regime (quantum/pause relative
// to section length, DESIGN.md §6) must scale with it or the arrival
// pattern — and with it the inversion rate — changes.
constexpr int kVmTickFactor = 16;

// Builds the §4.1 inner loop as bytecode: `iters` array writes.
vm::Program section_program(int iters, int sections, int pause) {
  vm::Builder b;
  auto sec_loop = b.label();
  auto sec_done = b.label();
  auto loop = b.label();
  auto done = b.label();
  b.push(0).store(1);  // section counter
  b.bind(sec_loop);
  b.load(1).push(sections).cmp_lt();
  b.jz(sec_done);
  b.sleep(pause);
  b.monitor_enter(0);
  b.push(0).store(0);
  b.bind(loop);
  b.load(0).push(iters).cmp_lt();
  b.jz(done);
  b.load(0).push(63).mul();  // pseudo-index
  b.push(64).store(2);       // (spread writes across the array)
  b.load(0).put_field(0, 0);
  b.load(0).push(1).add().store(0);
  b.jump(loop);
  b.bind(done);
  b.monitor_exit();
  b.load(1).push(1).add().store(1);
  b.jump(sec_loop);
  b.bind(sec_done);
  b.halt();
  return b.build();
}

Outcome run(bool interpreted) {
  const auto w0 = std::chrono::steady_clock::now();
  const int factor = interpreted ? kVmTickFactor : 1;
  rt::SchedulerConfig scfg;
  scfg.quantum = kQuantum * factor;
  rt::Scheduler sched(scfg);
  core::Engine engine(sched);
  heap::Heap heap;
  vm::Machine machine;
  machine.engine = &engine;
  machine.statics = &heap.statics();
  machine.objects.push_back(heap.alloc("o", 1));
  machine.monitors.push_back(engine.make_monitor("shared"));
  heap::HeapObject* o = machine.objects[0];
  core::RevocableMonitor* mon = machine.monitors[0];

  std::uint64_t hi_t0 = 0, hi_t1 = 0;
  auto native_body = [&](int iters, int sections) {
    for (int s = 0; s < sections; ++s) {
      sched.sleep_for(kPause);
      engine.synchronized(*mon, [&] {
        for (int i = 0; i < iters; ++i) {
          o->set_word(0, static_cast<std::uint64_t>(i));
          sched.yield_point();
        }
      });
    }
  };

  const vm::Program lo_prog =
      section_program(kLoIters, kSections, kPause * factor);
  const vm::Program hi_prog =
      section_program(kHiIters, kSections, kPause * factor);

  for (int w = 0; w < 6; ++w) {
    const bool high = w < 2;
    sched.spawn(std::string(high ? "hi" : "lo") + std::to_string(w),
                high ? 8 : 2,
                [&, high] {
                  if (high) hi_t0 = std::min(hi_t0 == 0 ? UINT64_MAX : hi_t0,
                                             sched.now());
                  if (interpreted) {
                    (void)vm::execute(machine, high ? hi_prog : lo_prog);
                  } else {
                    native_body(high ? kHiIters : kLoIters, kSections);
                  }
                  if (high) hi_t1 = std::max(hi_t1, sched.now());
                });
  }
  sched.run();

  Outcome out;
  out.hi_ticks = hi_t1 - hi_t0;
  out.rollbacks = engine.stats().rollbacks_completed;
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              w0)
                    .count();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "ablation_vm_workload: 2 high + 4 low threads, %d sections, "
      "lo=%d/hi=%d iterations\n\n",
      kSections, kLoIters, kHiIters);
  const Outcome native = run(false);
  const Outcome vm = run(true);
  std::printf("%-22s %12s %10s %12s\n", "section API", "hi ticks",
              "rollbacks", "wall (s)");
  std::printf("%-22s %12llu %10llu %12.4f\n", "native (lambda)",
              static_cast<unsigned long long>(native.hi_ticks),
              static_cast<unsigned long long>(native.rollbacks),
              native.seconds);
  std::printf("%-22s %12llu %10llu %12.4f\n", "interpreted (vm/)",
              static_cast<unsigned long long>(vm.hi_ticks),
              static_cast<unsigned long long>(vm.rollbacks),
              vm.seconds);
  std::printf(
      "\nExpected shape: equivalent revocation activity — the engine cannot\n"
      "tell the APIs apart.  Tick counts scale by the interpreter's\n"
      "instructions-per-workload-operation factor (~16x: every instruction\n"
      "is a yield point), and wall time adds dispatch overhead on top.\n");
  return 0;
}
