// Figure 6: "Total time for high-priority threads, 500K iterations".
#include "fig_common.hpp"

int main() {
  rvk::harness::FigureSpec spec;
  spec.id = "fig6";
  spec.title = "Total time for high-priority threads, 500K iterations";
  spec.overall = false;
  spec.high_iters = 20'000;  // paper 500'000, scaled 1/25
  return rvk::bench::run_figure_main(spec, /*paper_high_iters=*/500'000);
}
