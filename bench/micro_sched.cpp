// Scheduler dispatch micro-costs (DESIGN.md §8).
//
// The paper's argument prices revocation against the inversion it cures, so
// dispatch — paid at every yield point — must cost O(1), not O(runnable
// threads).  These benchmarks pin that down three ways:
//
//  * BM_BitmapQueue_PushPop vs BM_LinearScanQueue_PushPop: the new
//    priority-bucketed bitmap queue against a faithful replica of the old
//    linear-scan WaitQueue, at growing resident sizes.  The bitmap queue
//    must stay flat; the replica grows linearly (the acceptance bar is
//    >=10x at 1k resident threads).
//  * BM_SchedulerDispatch: end-to-end yield->switch->dispatch round trips
//    through the real scheduler at growing runnable-thread counts (flat).
//  * BM_DispatchWithSleepers: dispatch cost while many threads sit on the
//    deadline heap — the old per-tick O(sleepers) sweep is now one
//    heap-top compare (flat).
//  * BM_SchedulerDispatchObs: the same round trip with the observability
//    recorder installed — each rotation additionally pays two event-ring
//    writes (dispatch + switch-out).  A small constant add, still flat in
//    the thread count; BM_SchedulerDispatch is the obs-off baseline and
//    must not move when the recorder is merely linked in (null-checked
//    pointer, never taken).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

// Detached queue payloads: never spawned, never run (spawning would link
// them into the scheduler's ready queue).
struct Payload {
  explicit Payload(std::size_t n) {
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.push_back(std::make_unique<rt::VThread>(
          &sched, static_cast<rt::ThreadId>(i + 1), "p" + std::to_string(i),
          static_cast<int>(i % 10) + 1, [] {}, /*stack_size=*/4096));
    }
  }
  rt::Scheduler sched;
  std::vector<std::unique_ptr<rt::VThread>> threads;
};

// Replica of the pre-bitmap WaitQueue (vector + full scan for the best
// waiter) — the baseline the O(1) structure is measured against.
class LinearScanQueue {
 public:
  void push(rt::VThread* t) { items_.push_back({t, next_seq_++}); }

  rt::VThread* pop_best() {
    if (items_.empty()) return nullptr;
    std::size_t best = 0;
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (items_[i].thread->priority() > items_[best].thread->priority() ||
          (items_[i].thread->priority() == items_[best].thread->priority() &&
           items_[i].seq < items_[best].seq)) {
        best = i;
      }
    }
    rt::VThread* t = items_[best].thread;
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(best));
    return t;
  }

 private:
  struct Item {
    rt::VThread* thread;
    std::uint64_t seq;
  };
  std::vector<Item> items_;
  std::uint64_t next_seq_ = 0;
};

void BM_BitmapQueue_PushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Payload p(n);
  rt::WaitQueue q;
  for (auto& t : p.threads) q.push(t.get());
  for (auto _ : state) {
    rt::VThread* t = q.pop_best();
    benchmark::DoNotOptimize(t);
    q.push(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("resident threads: " + std::to_string(n) + " (flat)");
}
BENCHMARK(BM_BitmapQueue_PushPop)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LinearScanQueue_PushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Payload p(n);
  LinearScanQueue q;
  for (auto& t : p.threads) q.push(t.get());
  for (auto _ : state) {
    rt::VThread* t = q.pop_best();
    benchmark::DoNotOptimize(t);
    q.push(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("resident threads: " + std::to_string(n) + " (O(n) baseline)");
}
BENCHMARK(BM_LinearScanQueue_PushPop)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096);

// Full yield-point -> switch-out -> pick-next -> dispatch round trip with N
// runnable threads, quantum 1 so every yield rotates the processor.
void BM_SchedulerDispatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kYieldsPerThread = 64;
  for (auto _ : state) {
    state.PauseTiming();
    rt::SchedulerConfig cfg;
    cfg.quantum = 1;
    cfg.stack_size = 16 * 1024;
    rt::Scheduler sched(cfg);
    for (int i = 0; i < n; ++i) {
      sched.spawn("t" + std::to_string(i), rt::kNormPriority, [&sched] {
        for (int k = 0; k < kYieldsPerThread; ++k) sched.yield_point();
      });
    }
    state.ResumeTiming();
    sched.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          kYieldsPerThread);
  state.SetLabel("runnable threads: " + std::to_string(n) +
                 " (ns/item = one dispatch; flat)");
}
BENCHMARK(BM_SchedulerDispatch)->Arg(16)->Arg(256)->Arg(1024);

// BM_SchedulerDispatch with the obs recorder installed: prices the per-
// dispatch instrumentation (one ring write on dispatch, one on switch-out;
// spawn registers the ring once per thread, outside the timed loop's
// steady state).
void BM_SchedulerDispatchObs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kYieldsPerThread = 64;
  const bool owned = obs::Recorder::active() == nullptr;
  if (owned) obs::Recorder::install();
  for (auto _ : state) {
    state.PauseTiming();
    rt::SchedulerConfig cfg;
    cfg.quantum = 1;
    cfg.stack_size = 16 * 1024;
    rt::Scheduler sched(cfg);
    // Fresh scheduler ⇒ restart thread ids and the recorder's rings, as the
    // harness does per repetition.
    obs::on_run_begin();
    for (int i = 0; i < n; ++i) {
      sched.spawn("t" + std::to_string(i), rt::kNormPriority, [&sched] {
        for (int k = 0; k < kYieldsPerThread; ++k) sched.yield_point();
      });
    }
    state.ResumeTiming();
    sched.run();
  }
  if (owned) obs::Recorder::uninstall();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          kYieldsPerThread);
  state.SetLabel("runnable threads: " + std::to_string(n) +
                 " (obs on: +2 ring writes/dispatch; flat)");
}
BENCHMARK(BM_SchedulerDispatchObs)->Arg(16)->Arg(256)->Arg(1024);

// One worker spinning through yield points while N threads hold armed
// deadlines on the timer heap.  The virtual-clock tick must not pay
// O(sleepers).  Manual timing brackets only the worker's yield phase: the
// final drain (waking and finishing N sleepers once the worker exits) is
// real but is not the steady-state cost this benchmark isolates.
void BM_DispatchWithSleepers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kYields = 4096;
  for (auto _ : state) {
    rt::SchedulerConfig cfg;
    cfg.quantum = 1;
    cfg.stack_size = 16 * 1024;
    rt::Scheduler sched(cfg);
    for (int i = 0; i < n; ++i) {
      sched.spawn("sleeper" + std::to_string(i), rt::kNormPriority,
                  [&sched] { sched.sleep_for(1u << 30); });
    }
    double seconds = 0;
    sched.spawn("worker", rt::kNormPriority, [&sched, &seconds] {
      const auto t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < kYields; ++k) sched.yield_point();
      seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    });
    sched.run();
    state.SetIterationTime(seconds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kYields);
  state.SetLabel("armed timers: " + std::to_string(n) + " (flat)");
}
BENCHMARK(BM_DispatchWithSleepers)->Arg(0)->Arg(256)->Arg(4096)->UseManualTime();

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::printf(
      "\nExpected shape: the bitmap queue stays flat while the linear-scan\n"
      "replica grows with resident threads (>=10x apart at 1k);\n"
      "BM_SchedulerDispatch and BM_DispatchWithSleepers stay flat as\n"
      "threads/timers grow; BM_SchedulerDispatchObs stays flat too, a\n"
      "constant above BM_SchedulerDispatch (two timestamped event-ring\n"
      "writes per rotation, dominated by the steady-clock reads).\n");
  return 0;
}
