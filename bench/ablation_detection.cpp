// Ablation: where priority inversion is detected (§1.1 offers "either at
// lock acquisition, or periodically in the background").  Runs the paper's
// 2hi+8lo workload under each detection mode and reports high-priority and
// overall elapsed time plus revocation counts.
#include <cstdio>

#include "harness/workload.hpp"

int main() {
  using namespace rvk;
  using namespace rvk::harness;

  struct Mode {
    const char* name;
    core::DetectionMode mode;
    std::uint64_t period;
  };
  // Background periods are in scheduler dispatches; with the calibrated
  // quantum (one low-priority section) a whole run only has a few hundred
  // dispatches, so the interesting periods are small.
  const Mode modes[] = {
      {"none (never revoke)", core::DetectionMode::kNone, 0},
      {"at-acquire (paper default)", core::DetectionMode::kAtAcquire, 0},
      {"background p=2", core::DetectionMode::kBackground, 2},
      {"background p=20", core::DetectionMode::kBackground, 20},
      {"both", core::DetectionMode::kBoth, 10},
  };

  WorkloadParams base;
  base.high_threads = 2;
  base.low_threads = 8;
  base.sections_per_thread = 25;
  base.high_iters = 4'000;
  base.low_iters = 20'000;
  base.write_percent = 40;

  std::printf("ablation_detection: 2hi+8lo, 40%% writes, %d sections/thread\n\n",
              base.sections_per_thread);
  std::printf("%-28s %12s %12s %10s %10s %12s\n", "detection mode",
              "hi ticks", "all ticks", "revokes", "rollbacks", "bg detects");
  for (const Mode& m : modes) {
    WorkloadParams p = base;
    p.engine.detection = m.mode;
    p.engine.background_period = m.period == 0 ? 25 : m.period;
    WorkloadResult r = run_workload(VmKind::kModified, p);
    std::printf("%-28s %12llu %12llu %10llu %10llu %12llu\n", m.name,
                static_cast<unsigned long long>(r.high_elapsed_ticks),
                static_cast<unsigned long long>(r.overall_elapsed_ticks),
                static_cast<unsigned long long>(r.engine.revocations_requested),
                static_cast<unsigned long long>(r.engine.rollbacks_completed),
                static_cast<unsigned long long>(
                    r.engine.inversions_detected_background));
  }
  std::printf(
      "\nExpected shape: at-acquire reacts fastest (lowest hi ticks);\n"
      "background trades detection latency (grows with the period) for\n"
      "zero per-acquire cost; 'none' matches the unmodified VM's inversion.\n");
  return 0;
}
