// Shard scale-out: fixed-seed macro-style workload at 1/2/4 shards
// (DESIGN.md §16).
//
// The same total work — a tiered mix of speculative synchronized sections
// (gold 4 ops / silver 24 / bronze 160, the macro_open tier lengths) over
// per-shard account objects — is split evenly across N scheduler shards
// running on real OS threads (DomainSet kOsThreads).  Every 16th section is
// shipped to the neighbouring shard through the cross-shard mailbox
// (remote_call), so the measured spans include mailbox delivery, helper
// spawning, and the remote requester park/wake protocol, not just
// embarrassingly parallel section execution.
//
// The scaling metric is the *virtual-tick span*: each shard's clock ticks
// once per yield point it executes, so span(N) = max over shards of the
// shard's final clock reading, and speedup(N) = span(1) / span(N).  With a
// perfect work split and zero cross-shard cost speedup(2) would be exactly
// 2.0; every tick below that is mailbox/helper overhead charged to the
// shard that served it.  CI gates speedup(2) >= 1.7 through
// tools/bench_compare.py: the exported "shard_scale/speedup2_gate" entry
// carries real_time = 1700 / speedup2 against a baseline of 500 at the 2x
// threshold, so the gate trips exactly when speedup2 < 1.7.  (Wall-clock
// throughput is reported but never gated — on a single-core runner it
// cannot scale, and that is not what this benchmark claims.)
//
// Knobs: RVK_SEED (workload seed), RVK_SHARD_SCALE_JSON (export path,
// default BENCH_shard_scale.json).
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/histogram.hpp"
#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "rt/domain.hpp"

namespace {

using namespace rvk;

// Total sections per tier across the WHOLE process — divisible by
// shards * workers-per-tier for every N in {1, 2, 4}.
constexpr std::uint64_t kGoldSections = 16'000;   // 4 ops each
constexpr std::uint64_t kSilverSections = 12'000; // 24 ops each
constexpr std::uint64_t kBronzeSections = 4'000;  // 160 ops each
constexpr int kWorkersPerTier = 4;
constexpr int kAccountsPerShard = 64;
constexpr std::uint64_t kRemoteEvery = 16;  // every 16th section ships

struct Tier {
  const char* name;
  int priority;
  int ops;
  std::uint64_t total_sections;
};

constexpr Tier kTiers[] = {
    {"gold", 9, 4, kGoldSections},
    {"silver", 6, 24, kSilverSections},
    {"bronze", 3, 160, kBronzeSections},
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10) : fallback;
}

struct XorShift {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

struct ShardCtx {
  core::Engine* engine = nullptr;
  std::unique_ptr<heap::Heap> heap;
  std::vector<heap::HeapObject*> accounts;
  Histogram latency;  // section duration, virtual ticks of the serving shard
  std::uint64_t span_ticks = 0;
  std::uint64_t sections_done = 0;
};

struct Outcome {
  std::uint64_t span_ticks = 0;  // max over shards
  std::uint64_t total_ticks = 0; // sum over shards (work conservation)
  double wall_s = 0.0;
  Histogram latency;             // merged over shards
};

// One synchronized section on `shard`'s engine: `ops` increments of a
// pseudo-randomly chosen account, one yield point per op (the §4.1 tick
// discipline), recorded into that shard's latency histogram.
void run_section(ShardCtx& shard, rt::Scheduler& sched, const Tier& tier,
                 std::uint64_t pick) {
  heap::HeapObject* acct =
      shard.accounts[pick % static_cast<std::uint64_t>(kAccountsPerShard)];
  const std::uint64_t t0 = sched.now();
  shard.engine->synchronized(acct, [&] {
    for (int k = 0; k < tier.ops; ++k) {
      acct->set<std::uint64_t>(0, acct->get<std::uint64_t>(0) + 1);
      sched.yield_point();
    }
  });
  shard.latency.record(sched.now() - t0);
  ++shard.sections_done;
}

Outcome run(std::size_t nshards, std::uint64_t seed) {
  rt::DomainSet::Config cfg;
  cfg.shards = nshards;
  cfg.mode = rt::DomainSet::Mode::kOsThreads;
  cfg.sched.quantum = 50;
  cfg.sched.stack_size = 32 * 1024;
  rt::DomainSet set(cfg);

  std::vector<ShardCtx> shards(nshards);

  const auto t0 = std::chrono::steady_clock::now();
  set.start(
      [&](rt::Domain& d) {
        ShardCtx& me = shards[d.id()];
        me.heap = std::make_unique<heap::Heap>();
        me.engine = new core::Engine(d.sched());  // binds the entered domain
        me.accounts.reserve(kAccountsPerShard);
        for (int a = 0; a < kAccountsPerShard; ++a) {
          me.accounts.push_back(
              me.heap->alloc("acct" + std::to_string(a), 8));
        }
        for (std::size_t ti = 0; ti < std::size(kTiers); ++ti) {
          const Tier& tier = kTiers[ti];
          const std::uint64_t per_worker =
              tier.total_sections / nshards / kWorkersPerTier;
          for (int w = 0; w < kWorkersPerTier; ++w) {
            const std::uint64_t wseed =
                seed ^ (0x9e3779b97f4a7c15ull * (d.id() + 1)) ^
                (0xbf58476d1ce4e5b9ull * static_cast<std::uint64_t>(w + 1)) ^
                (0x94d049bb133111ebull * (ti + 1));
            d.sched().spawn(
                std::string(tier.name) + std::to_string(w), tier.priority,
                [&, per_worker, wseed, shard_id = d.id()] {
                  XorShift rng{wseed | 1};
                  for (std::uint64_t i = 0; i < per_worker; ++i) {
                    const std::uint64_t pick = rng.next();
                    if (nshards > 1 && i % kRemoteEvery == kRemoteEvery - 1) {
                      // Ship this section to the neighbour: it runs in a
                      // helper vthread on the neighbour's shard, against the
                      // neighbour's engine and accounts, at this tier's
                      // priority.
                      const auto target = static_cast<std::uint16_t>(
                          (shard_id + 1) % nshards);
                      set.remote_call(
                          target, tier.priority, tier.name, [&, pick, target] {
                            ShardCtx& peer = shards[target];
                            run_section(peer, peer.engine->scheduler(), tier,
                                        pick);
                          });
                    } else {
                      ShardCtx& mine = shards[shard_id];
                      run_section(mine, mine.engine->scheduler(), tier, pick);
                    }
                  }
                });
          }
        }
      },
      [&](rt::Domain& d) {
        ShardCtx& me = shards[d.id()];
        me.span_ticks = d.sched().now();
        delete me.engine;
        me.engine = nullptr;
      });
  set.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Outcome o;
  o.wall_s = wall_s;
  std::uint64_t sections = 0;
  for (ShardCtx& s : shards) {
    if (s.span_ticks > o.span_ticks) o.span_ticks = s.span_ticks;
    o.total_ticks += s.span_ticks;
    sections += s.sections_done;
    o.latency.merge(s.latency);
  }
  const std::uint64_t expected =
      kGoldSections + kSilverSections + kBronzeSections;
  RVK_CHECK_MSG(sections == expected,
                "shard_scale lost sections: work split is broken");
  return o;
}

}  // namespace

int main() {
  const std::uint64_t seed = env_u64("RVK_SEED", 42);
  const char* json_env = std::getenv("RVK_SHARD_SCALE_JSON");
  const std::string json_path = json_env != nullptr && *json_env != '\0'
                                    ? json_env
                                    : "BENCH_shard_scale.json";
  const std::uint64_t total_sections =
      kGoldSections + kSilverSections + kBronzeSections;

  std::printf(
      "shard_scale: fixed-seed tiered section workload vs shard count\n"
      "(total work constant: %llu sections; every %lluth section ships to\n"
      "the neighbour shard via the cross-shard mailbox; seed %llu)\n\n",
      static_cast<unsigned long long>(total_sections),
      static_cast<unsigned long long>(kRemoteEvery),
      static_cast<unsigned long long>(seed));
  std::printf("%-8s %14s %16s %12s %12s %10s\n", "shards", "span ticks",
              "sections/ktick", "p99 ticks", "max ticks", "wall s");

  std::vector<std::size_t> shard_counts{1, 2, 4};
  std::vector<Outcome> outcomes;
  for (std::size_t n : shard_counts) {
    outcomes.push_back(run(n, seed));
    const Outcome& o = outcomes.back();
    std::printf("%-8zu %14llu %16.1f %12llu %12llu %10.3f\n", n,
                static_cast<unsigned long long>(o.span_ticks),
                1000.0 * static_cast<double>(total_sections) /
                    static_cast<double>(o.span_ticks),
                static_cast<unsigned long long>(o.latency.percentile(0.99)),
                static_cast<unsigned long long>(o.latency.max()),
                o.wall_s);
  }

  const double speedup2 = static_cast<double>(outcomes[0].span_ticks) /
                          static_cast<double>(outcomes[1].span_ticks);
  const double speedup4 = static_cast<double>(outcomes[0].span_ticks) /
                          static_cast<double>(outcomes[2].span_ticks);
  std::printf("\nvirtual-tick speedup: 2 shards %.2fx, 4 shards %.2fx\n",
              speedup2, speedup4);

  {
    std::ofstream os(json_path);
    RVK_CHECK_MSG(os.good(), "cannot open shard_scale JSON export path");
    os << "{\n  \"context\": {\"bench\": \"shard_scale\", \"seed\": \""
       << seed << "\"},\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      const Outcome& o = outcomes[i];
      const std::string p =
          "shard_scale/shards=" + std::to_string(shard_counts[i]) + "/";
      os << "    {\"name\": \"" << p
         << "span_ticks\", \"run_type\": \"counter\", \"value\": "
         << o.span_ticks << "},\n";
      os << "    {\"name\": \"" << p
         << "total_ticks\", \"run_type\": \"counter\", \"value\": "
         << o.total_ticks << "},\n";
      os << "    {\"name\": \"" << p
         << "p99_ticks\", \"run_type\": \"counter\", \"value\": "
         << o.latency.percentile(0.99) << "},\n";
    }
    // The CI gate: real_time = 1700 / speedup2 vs a baseline of 500 at the
    // 2x bench_compare threshold fails exactly when speedup2 < 1.7.
    os << "    {\"name\": \"shard_scale/speedup2_gate\", \"run_type\": "
          "\"iteration\", \"iterations\": 1, \"real_time\": "
       << (1700.0 / speedup2) << ", \"cpu_time\": " << (1700.0 / speedup2)
       << ", \"time_unit\": \"ns\"}\n  ]\n}\n";
  }
  std::printf("wrote %s\n\n", json_path.c_str());

  std::printf(
      "Expected shape: virtual-tick span halves from 1 to 2 shards and\n"
      "halves again to 4 (each shard owns 1/N of the fixed section mix;\n"
      "cross-shard sections move work, not duplicate it), so tick speedup\n"
      "sits near N (slightly above: fewer workers per shard means fewer\n"
      "contended-monitor re-yields) — the gated 1.7x floor at 2 shards is\n"
      "the budget for mailbox delivery and helper servicing.  Spans vary\n"
      "by a few ticks run-to-run under kOsThreads (message arrival order\n"
      "is OS timing), which the gate margin absorbs.  p99 section ticks\n"
      "SHRINK with shard count: a section's tick span counts every yield\n"
      "its shard interleaves, and each shard hosts fewer unrelated-tier\n"
      "workers as N grows.  Wall time does not scale on a single-core\n"
      "runner and is deliberately not gated.\n");
  return 0;
}
