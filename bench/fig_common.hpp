// Shared driver for the figure-reproduction binaries (Figures 5–8).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/ascii_plot.hpp"
#include "harness/env.hpp"
#include "harness/figures.hpp"
#include "obs/recorder.hpp"

namespace rvk::bench {

// Runs one figure end to end: applies environment overrides, sweeps every
// panel/write-ratio/VM combination, prints the paper-style table, and
// writes a CSV when RVK_CSV is set.
//
// With RVK_OBS=1 (or RVK_OBS_METRICS / RVK_OBS_TRACE naming files) an
// observability recorder spans the whole sweep: the metrics registry —
// including the inversion-resolution latency histograms — accumulates
// across every repetition, and the Chrome trace-event JSON keeps the last
// repetition's interleaving (see DESIGN.md §10).
inline int run_figure_main(harness::FigureSpec spec,
                           std::uint64_t paper_high_iters) {
  harness::apply_env(spec, paper_high_iters);
  std::printf("%s — %s\n", spec.id.c_str(), spec.title.c_str());
  std::printf(
      "parameters: %d sections/thread, low iters %llu, high iters %llu, "
      "%d reps (+1 warm-up)\n\n",
      spec.base.sections_per_thread,
      static_cast<unsigned long long>(spec.base.low_iters),
      static_cast<unsigned long long>(spec.high_iters), spec.reps);
  // Install here, not per repetition: per-rep Engines adopt this recorder
  // instead of installing their own, so metrics survive Engine teardown.
  const bool obs_owned =
      obs::Recorder::env_enabled() && obs::Recorder::active() == nullptr;
  if (obs_owned) obs::Recorder::install();
  harness::FigureResult fig = harness::run_figure(spec, &std::cerr);
  harness::print_figure(fig, std::cout);
  std::printf("\n");
  harness::plot_figure(fig, harness::PlotOptions{}, std::cout);
  const std::string dir = harness::csv_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/" + spec.id + ".csv";
    if (harness::write_csv(fig, path)) {
      std::printf("CSV written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write CSV to %s\n",
                   path.c_str());
    }
  }
  if (obs::Recorder* rec = obs::Recorder::active()) {
    const char* mp = std::getenv("RVK_OBS_METRICS");
    const std::string metrics_path = (mp != nullptr && mp[0] != '\0')
                                         ? std::string(mp)
                                         : "obs_" + spec.id + "_metrics.json";
    const char* tp = std::getenv("RVK_OBS_TRACE");
    const std::string trace_path = (tp != nullptr && tp[0] != '\0')
                                       ? std::string(tp)
                                       : "obs_" + spec.id + "_trace.json";
    std::ofstream mo(metrics_path);
    if (mo) {
      rec->export_metrics(mo, {{"figure", spec.id}, {"title", spec.title}});
      std::printf("obs metrics written to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write obs metrics to %s\n",
                   metrics_path.c_str());
    }
    std::ofstream to(trace_path);
    if (to) {
      rec->export_chrome_trace(to);
      std::printf(
          "obs trace written to %s (load in Perfetto or chrome://tracing)\n",
          trace_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write obs trace to %s\n",
                   trace_path.c_str());
    }
  }
  if (obs_owned) obs::Recorder::uninstall();
  return 0;
}

}  // namespace rvk::bench
