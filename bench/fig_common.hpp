// Shared driver for the figure-reproduction binaries (Figures 5–8).
#pragma once

#include <cstdio>
#include <iostream>

#include "harness/ascii_plot.hpp"
#include "harness/env.hpp"
#include "harness/figures.hpp"

namespace rvk::bench {

// Runs one figure end to end: applies environment overrides, sweeps every
// panel/write-ratio/VM combination, prints the paper-style table, and
// writes a CSV when RVK_CSV is set.
inline int run_figure_main(harness::FigureSpec spec,
                           std::uint64_t paper_high_iters) {
  harness::apply_env(spec, paper_high_iters);
  std::printf("%s — %s\n", spec.id.c_str(), spec.title.c_str());
  std::printf(
      "parameters: %d sections/thread, low iters %llu, high iters %llu, "
      "%d reps (+1 warm-up)\n\n",
      spec.base.sections_per_thread,
      static_cast<unsigned long long>(spec.base.low_iters),
      static_cast<unsigned long long>(spec.high_iters), spec.reps);
  harness::FigureResult fig = harness::run_figure(spec, &std::cerr);
  harness::print_figure(fig, std::cout);
  std::printf("\n");
  harness::plot_figure(fig, harness::PlotOptions{}, std::cout);
  const std::string dir = harness::csv_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/" + spec.id + ".csv";
    if (harness::write_csv(fig, path)) {
      std::printf("CSV written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write CSV to %s\n",
                   path.c_str());
    }
  }
  return 0;
}

}  // namespace rvk::bench
