// Macro benchmark: a bank-service workload (the paper's future work asks to
// "evaluate the performance of our technique for real-world applications").
//
// Mixed thread population over a shared ledger object graph:
//   * low-priority batch workers applying long transfer batches,
//   * medium-priority tellers doing short balance updates,
//   * high-priority auditors needing consistent whole-ledger snapshots.
// All synchronization is per-object (`engine.synchronized(obj, …)`-style on
// one ledger root), so this exercises the per-object monitor nursery too.
//
// Reported per protocol: auditor latency percentiles (the real-time story),
// teller latency percentiles, and total throughput — for the unmodified
// blocking VM vs the revocation engine, on virtual ticks (deterministic).
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "monitor/monitor.hpp"
#include "rt/scheduler.hpp"
#include "svc/latency.hpp"

namespace {

using namespace rvk;

constexpr int kAccounts = 128;
constexpr int kBatchWorkers = 4;
constexpr int kTellers = 3;
constexpr int kAuditors = 1;
constexpr int kBatchOps = 2000;
constexpr int kTellerOps = 40;
constexpr int kRounds = 40;  // operations per thread

// Tier indices into the shared per-tier recorder (svc/latency.hpp) — the
// same percentile/report surface the open-loop macro_open sweep uses.
constexpr std::size_t kAuditorTier = 0;
constexpr std::size_t kTellerTier = 1;

struct Result {
  svc::TierRecorder recorder{{"auditor", "teller"}};
  std::uint64_t total_ticks = 0;
  std::uint64_t rollbacks = 0;
};

Result run(bool revocable) {
  rt::SchedulerConfig scfg;
  scfg.quantum = 500;  // several switches per batch: contention is observable
  rt::Scheduler sched(scfg);
  std::unique_ptr<core::Engine> engine;
  std::unique_ptr<monitor::BlockingMonitor> bmon;
  core::RevocableMonitor* rmon = nullptr;
  heap::Heap heap;
  heap::HeapArray<std::uint64_t>* accounts =
      heap.alloc_array<std::uint64_t>(kAccounts);
  heap::HeapObject* ledger = heap.alloc("ledger", 1);
  for (int i = 0; i < kAccounts; ++i) accounts->set_unlogged(i, 1000);

  if (revocable) {
    engine = std::make_unique<core::Engine>(sched);
    rmon = engine->monitor_of(ledger);
  } else {
    bmon = std::make_unique<monitor::BlockingMonitor>("ledger");
  }

  auto locked = [&](auto&& body) {
    if (revocable) {
      engine->synchronized(*rmon, body);
    } else {
      bmon->acquire();
      body();
      bmon->release();
    }
  };

  Result result;

  for (int w = 0; w < kBatchWorkers; ++w) {
    sched.spawn("batch-" + std::to_string(w), 2, [&, w] {
      SplitMix64 rng(0xB000 + w);
      for (int r = 0; r < kRounds; ++r) {
        sched.sleep_for(rng.next_below(4000));
        const std::uint64_t seed = rng.next();
        locked([&] {
          SplitMix64 brng(seed);
          for (int i = 0; i < kBatchOps; ++i) {
            const auto from = static_cast<std::size_t>(brng.next_below(kAccounts));
            const auto to = static_cast<std::size_t>(brng.next_below(kAccounts));
            const std::uint64_t amount = brng.next_below(5);
            const std::uint64_t have = accounts->get(from);
            if (have >= amount) {
              accounts->set(from, have - amount);
              accounts->set(to, accounts->get(to) + amount);
            }
            sched.yield_point();
          }
        });
      }
    });
  }

  for (int t = 0; t < kTellers; ++t) {
    sched.spawn("teller-" + std::to_string(t), 5, [&, t] {
      SplitMix64 rng(0x7E11E4 + t);
      for (int r = 0; r < kRounds * 4; ++r) {
        sched.sleep_for(rng.next_below(3000));
        const std::uint64_t seed = rng.next();
        const std::uint64_t t0 = sched.now();
        locked([&] {
          SplitMix64 trng(seed);
          for (int i = 0; i < kTellerOps; ++i) {
            const auto acct = static_cast<std::size_t>(trng.next_below(kAccounts));
            accounts->set(acct, accounts->get(acct) + 1);
            sched.yield_point();
          }
        });
        result.recorder.record_latency(kTellerTier, sched.now() - t0);
      }
    });
  }

  for (int a = 0; a < kAuditors; ++a) {
    sched.spawn("auditor-" + std::to_string(a), 9, [&] {
      SplitMix64 rng(0xA0D17);
      for (int r = 0; r < kRounds * 2; ++r) {
        sched.sleep_for(2000 + rng.next_below(2000));
        const std::uint64_t t0 = sched.now();
        std::uint64_t total = 0;
        locked([&] {
          total = 0;
          for (int i = 0; i < kAccounts; ++i) {
            total += accounts->get(i);
            sched.yield_point();
          }
        });
        result.recorder.record_latency(kAuditorTier, sched.now() - t0);
        RVK_CHECK_MSG(total >= kAccounts * 1000,
                      "ledger lost money: inconsistent snapshot");
      }
    });
  }

  sched.run();
  result.total_ticks = sched.now();
  if (engine) result.rollbacks = engine->stats().rollbacks_completed;
  return result;
}

}  // namespace

int main() {
  std::printf(
      "macro_bank: %d accounts; %d batch workers (prio 2, %d-op batches), "
      "%d tellers (prio 5), %d auditor (prio 9)\n\n",
      kAccounts, kBatchWorkers, kBatchOps, kTellers, kAuditors);
  const Result blocking = run(false);
  const Result revoking = run(true);
  std::printf(
      "blocking VM:\n  auditor latency (ticks): %s\n"
      "  teller  latency (ticks): %s\n  total %llu ticks\n\n",
      blocking.recorder.summary(kAuditorTier, blocking.total_ticks).c_str(),
      blocking.recorder.summary(kTellerTier, blocking.total_ticks).c_str(),
      static_cast<unsigned long long>(blocking.total_ticks));
  std::printf(
      "revocable VM (%llu rollbacks):\n"
      "  auditor latency (ticks): %s\n"
      "  teller  latency (ticks): %s\n  total %llu ticks\n\n",
      static_cast<unsigned long long>(revoking.rollbacks),
      revoking.recorder.summary(kAuditorTier, revoking.total_ticks).c_str(),
      revoking.recorder.summary(kTellerTier, revoking.total_ticks).c_str(),
      static_cast<unsigned long long>(revoking.total_ticks));
  std::printf(
      "Expected shape: auditor p95/p99 collapse from ~batch length to ~its\n"
      "own snapshot cost under revocation; tellers (medium priority) gain\n"
      "against batches but can still be preempted by the auditor; total\n"
      "ticks grow by the re-executed batch work.\n");
  return 0;
}
