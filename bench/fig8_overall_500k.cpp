// Figure 8: "Overall time, 500K iterations".
#include "fig_common.hpp"

int main() {
  rvk::harness::FigureSpec spec;
  spec.id = "fig8";
  spec.title = "Overall time, 500K iterations";
  spec.overall = true;
  spec.high_iters = 20'000;
  return rvk::bench::run_figure_main(spec, /*paper_high_iters=*/500'000);
}
