// Scheduler scalability: dispatch cost vs green-thread count (DESIGN.md §8).
//
// The pre-bitmap scheduler paid O(ready threads) in pick_next() and
// O(sleeping threads) per virtual-clock tick, so per-dispatch cost grew with
// population.  With the per-priority intrusive FIFO lists + occupancy bitmap
// and the deadline min-heap, a dispatch is find-first-set + list pop: cost
// must stay flat from 10 threads to 10,000.
//
// Each population runs the same total amount of work (kTotalYields yield
// points spread evenly over the threads, quantum 1 so every yield rotates),
// plus a sleep/wake phase exercising the timer heap at the same scale.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

struct Outcome {
  double ns_per_dispatch;
  double ns_per_sleep_cycle;
  std::uint64_t dispatches;
};

Outcome run(int nthreads) {
  // Same total work at every population: per-thread share shrinks as the
  // population grows.
  constexpr std::uint64_t kTotalYields = 1u << 20;  // ~1M dispatches
  const std::uint64_t yields_each = kTotalYields / nthreads;

  rt::SchedulerConfig cfg;
  cfg.quantum = 1;            // rotate on every yield point
  cfg.stack_size = 16 * 1024; // 10k threads => ~160MB of stacks, fine
  rt::Scheduler sched(cfg);
  for (int i = 0; i < nthreads; ++i) {
    sched.spawn("t" + std::to_string(i), rt::kNormPriority, [&sched, yields_each] {
      for (std::uint64_t k = 0; k < yields_each; ++k) sched.yield_point();
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sched.run();
  const double rotate_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t dispatches = sched.dispatches();

  // Sleep/wake churn: every thread arms a deadline, the clock fast-forwards,
  // all wake — repeated.  Exercises arm_timer / fire_due_timers at scale.
  constexpr int kSleepRounds = 8;
  rt::Scheduler sched2(cfg);
  for (int i = 0; i < nthreads; ++i) {
    sched2.spawn("s" + std::to_string(i), rt::kNormPriority, [&sched2] {
      for (int r = 0; r < kSleepRounds; ++r) sched2.sleep_for(100);
    });
  }
  const auto t1 = std::chrono::steady_clock::now();
  sched2.run();
  const double sleep_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();

  Outcome o;
  o.ns_per_dispatch = rotate_s * 1e9 / static_cast<double>(dispatches);
  o.ns_per_sleep_cycle =
      sleep_s * 1e9 / static_cast<double>(nthreads) / kSleepRounds;
  o.dispatches = dispatches;
  return o;
}

}  // namespace

int main() {
  std::printf(
      "sched_scale: per-dispatch cost vs green-thread population\n"
      "(constant total work: ~1M yield points split across the threads,\n"
      "quantum 1, 16KB stacks; sleep phase: 8 sleep/wake rounds each)\n\n");
  std::printf("%-10s %12s %16s %20s\n", "threads", "dispatches",
              "ns/dispatch", "ns/sleep-wake cycle");
  for (int n : {10, 100, 1000, 10000}) {
    const Outcome o = run(n);
    std::printf("%-10d %12llu %16.1f %20.1f\n", n,
                static_cast<unsigned long long>(o.dispatches),
                o.ns_per_dispatch, o.ns_per_sleep_cycle);
  }
  std::printf(
      "\nExpected shape: ns/dispatch roughly flat from 10 to 10,000 threads\n"
      "(O(1) bitmap pick + list pop; no O(n) ready scan) — a residual drift\n"
      "of ~2x at 10k threads is cache pressure from the ~160MB of stacks and\n"
      "thread objects, not queue length.  ns/sleep-wake grows only\n"
      "logarithmically (deadline min-heap), not linearly as the old per-tick\n"
      "sleeper sweep did.\n");
  return 0;
}
