// Monitor and synchronized-section micro-costs: uncontended acquire/release
// for the blocking baseline vs the full revocable section machinery (frame
// push, watermark, commit), plus context-switch and revocation round-trips.
#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "monitor/monitor.hpp"
#include "monitor/thin_lock.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rvk;

void BM_BlockingMonitorUncontended(benchmark::State& state) {
  rt::Scheduler sched;
  monitor::BlockingMonitor m("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      m.acquire();
      m.release();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockingMonitorUncontended);

void BM_ThinLockUncontended(benchmark::State& state) {
  rt::Scheduler sched;
  monitor::ThinLock lock("l");
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      lock.acquire();
      lock.release();
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("Jikes-style lock word fast path");
}
BENCHMARK(BM_ThinLockUncontended);

void BM_RevocableSectionEmpty(benchmark::State& state) {
  rt::Scheduler sched;
  core::Engine eng(sched);
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    for (auto _ : state) {
      eng.synchronized(*m, [] {});
    }
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RevocableSectionEmpty);

void BM_RevocableSectionRecursive(benchmark::State& state) {
  rt::Scheduler sched;
  core::Engine eng(sched);
  core::RevocableMonitor* m = eng.make_monitor("m");
  sched.spawn("bench", rt::kNormPriority, [&] {
    eng.synchronized(*m, [&] {
      for (auto _ : state) {
        eng.synchronized(*m, [] {});  // recursive frame
      }
    });
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RevocableSectionRecursive);

void BM_ContextSwitchPingPong(benchmark::State& state) {
  // Quantum 1: every yield point rotates the processor, so each iteration
  // measured in thread `a` pays a full a→scheduler→b→scheduler→a round trip
  // (two context switches plus scheduler dispatch).
  rt::SchedulerConfig cfg;
  cfg.quantum = 1;
  rt::Scheduler sched(cfg);
  sched.spawn("a", rt::kNormPriority, [&] {
    for (auto _ : state) {
      sched.yield_point();
    }
  });
  sched.spawn("b", rt::kNormPriority, [&] {
    while (sched.live_count() > 1) sched.yield_point();
  });
  sched.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContextSwitchPingPong);

void BM_RevocationRoundTrip(benchmark::State& state) {
  // Full revocation scenario per iteration: lo enters and writes, hi
  // preempts, lo rolls back `writes` logged words and re-executes.
  const int writes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::Scheduler sched;
    core::Engine eng(sched);
    heap::Heap h;
    heap::HeapArray<std::uint64_t>* arr = h.alloc_array<std::uint64_t>(64);
    core::RevocableMonitor* m = eng.make_monitor("m");
    sched.spawn("lo", 2, [&] {
      int runs = 0;
      eng.synchronized(*m, [&] {
        ++runs;
        for (int i = 0; i < writes; ++i) {
          arr->set(static_cast<std::size_t>(i) & 63,
                   static_cast<std::uint64_t>(i));
          if (runs == 1) sched.yield_point();
        }
        if (runs == 1) {
          for (int i = 0; i < 500; ++i) sched.yield_point();
        }
      });
    });
    sched.spawn("hi", 8, [&] {
      sched.sleep_for(static_cast<std::uint64_t>(writes) / 2 + 10);
      eng.synchronized(*m, [] {});
    });
    sched.run();
  }
  state.SetLabel(std::to_string(writes) + " logged words per rollback; " +
                 "includes VM setup per iteration");
}
BENCHMARK(BM_RevocationRoundTrip)->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMicrosecond)->Iterations(200);

}  // namespace

BENCHMARK_MAIN();
