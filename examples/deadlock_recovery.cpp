// deadlock_recovery: the classic two-lock deadlock (§1.1), broken by
// revocation.
//
// T1 acquires L1 then L2; T2 acquires L2 then L1.  On a plain VM this
// schedule deadlocks permanently.  The revocation engine detects the cycle
// in the waits-for graph, rolls one thread back to its outer section entry
// (undoing its updates), lets the other finish, and re-executes the victim
// — "for mission-critical applications in which running programs cannot be
// summarily terminated, our approach provides an opportunity for corrective
// action to be undertaken gracefully."
#include <cstdio>

#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "rt/scheduler.hpp"

int main() {
  using namespace rvk;
  rt::Scheduler sched;
  core::Engine engine(sched);
  heap::Heap heap;

  core::RevocableMonitor* l1 = engine.make_monitor("L1");
  core::RevocableMonitor* l2 = engine.make_monitor("L2");
  heap::HeapObject* shared = heap.alloc("shared", 2);

  auto worker = [&](const char* name, core::RevocableMonitor* first,
                    core::RevocableMonitor* second, int slot) {
    int attempts = 0;
    engine.synchronized(*first, [&] {
      ++attempts;
      std::printf("[%6llu] %s: holds %s (attempt %d)\n",
                  static_cast<unsigned long long>(sched.now()), name,
                  first->name().c_str(), attempts);
      shared->set<int>(slot, attempts);
      // Dawdle long enough that the other thread grabs its first lock:
      // the cross acquisition below then forms the cycle.
      for (int i = 0; i < 300; ++i) sched.yield_point();
      std::printf("[%6llu] %s: now wants %s\n",
                  static_cast<unsigned long long>(sched.now()), name,
                  second->name().c_str());
      engine.synchronized(*second, [&] {
        std::printf("[%6llu] %s: acquired both locks\n",
                    static_cast<unsigned long long>(sched.now()), name);
      });
    });
    std::printf("[%6llu] %s: finished (%d attempt(s))\n",
                static_cast<unsigned long long>(sched.now()), name, attempts);
  };

  sched.spawn("T1", 5, [&] { worker("T1", l1, l2, 0); });
  sched.spawn("T2", 5, [&] { worker("T2", l2, l1, 1); });
  sched.run();

  const core::EngineStats& st = engine.stats();
  std::printf(
      "\nengine: %llu deadlock(s) detected, %llu broken, %llu rollback(s)\n"
      "Both threads completed — the deadlock was resolved by revoking one\n"
      "thread's outer section and replaying it after the other finished.\n",
      static_cast<unsigned long long>(st.deadlocks_detected),
      static_cast<unsigned long long>(st.deadlocks_broken),
      static_cast<unsigned long long>(st.rollbacks_completed));
  return st.deadlocks_broken > 0 ? 0 : 1;
}
