// Quickstart: the paper's Figure 1 walk-through, narrated.
//
// A low-priority thread Tl enters a synchronized section and updates object
// o1.  High-priority Th arrives at the same monitor: instead of waiting (or
// merely donating its priority, as priority inheritance would), the runtime
// *revokes* Tl — its update to o1 is rolled back from the undo log, control
// in Tl returns to the section entry, and Th enters immediately.  When Th
// leaves, Tl re-executes and commits.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "rt/scheduler.hpp"

int main() {
  using namespace rvk;

  rt::Scheduler sched;
  core::Engine engine(sched);
  heap::Heap heap;

  heap::HeapObject* o1 = heap.alloc("o1", 1);
  heap::HeapObject* o2 = heap.alloc("o2", 1);
  core::RevocableMonitor* monitor = engine.make_monitor("shared-monitor");

  sched.spawn("Tl (low)", 2, [&] {
    int attempt = 0;
    engine.synchronized(*monitor, [&] {
      ++attempt;
      std::printf("[%6llu] Tl: entered the section (attempt %d)\n",
                  static_cast<unsigned long long>(sched.now()), attempt);
      o1->set<int>(0, 100);  // Figure 1(b): Tl modifies o1
      std::printf("[%6llu] Tl: wrote o1 = 100 (speculatively)\n",
                  static_cast<unsigned long long>(sched.now()));
      // A long computation full of yield points — plenty of opportunity for
      // the runtime to preempt us.
      for (int i = 0; i < 1000; ++i) sched.yield_point();
      o2->set<int>(0, 100);
      std::printf("[%6llu] Tl: wrote o2 = 100, committing\n",
                  static_cast<unsigned long long>(sched.now()));
    });
    std::printf("[%6llu] Tl: committed after %d attempt(s)\n",
                static_cast<unsigned long long>(sched.now()), attempt);
  });

  sched.spawn("Th (high)", 8, [&] {
    sched.sleep_for(100);  // arrive while Tl is mid-section (Figure 1(c))
    std::printf("[%6llu] Th: contending for the monitor...\n",
                static_cast<unsigned long long>(sched.now()));
    engine.synchronized(*monitor, [&] {
      std::printf("[%6llu] Th: entered! o1 = %d (Tl's write was revoked)\n",
                  static_cast<unsigned long long>(sched.now()),
                  o1->get<int>(0));
      o1->set<int>(0, 1);  // Figure 1(e)
      o2->set<int>(0, 1);
    });
    std::printf("[%6llu] Th: done\n",
                static_cast<unsigned long long>(sched.now()));
  });

  sched.run();

  const core::EngineStats& st = engine.stats();
  std::printf(
      "\nfinal heap: o1=%d o2=%d\n"
      "engine: %llu sections committed, %llu revocations requested, "
      "%llu rollbacks, %llu words undone\n",
      o1->get<int>(0), o2->get<int>(0),
      static_cast<unsigned long long>(st.sections_committed),
      static_cast<unsigned long long>(st.revocations_requested),
      static_cast<unsigned long long>(st.rollbacks_completed),
      static_cast<unsigned long long>(st.words_undone));
  return 0;
}
