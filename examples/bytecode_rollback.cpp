// bytecode_rollback: the paper's §3.1.1 transformation, executed literally.
//
// A low-priority "compiled Java method" pushes two operands, enters a
// monitor, does a long field-update loop, then CONSUMES the pre-entry
// operands after the loop.  When the high-priority thread preempts it, the
// VM aborts the section, restores the saved operand stack and locals, and
// transfers control back to the monitorenter — "the contents of the VM's
// operand stack before executing a monitorenter operation must be the same
// at the first invocation and at all subsequent invocations resulting from
// that section's re-execution."
#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "heap/heap.hpp"
#include "rt/scheduler.hpp"
#include "vm/interpreter.hpp"

int main() {
  using namespace rvk;
  rt::Scheduler sched;
  core::Engine engine(sched);
  heap::Heap heap;

  vm::Machine machine;
  machine.engine = &engine;
  machine.statics = &heap.statics();
  machine.objects.push_back(heap.alloc("o", 2));
  machine.monitors.push_back(engine.make_monitor("M"));

  // The "bytecode" of the low-priority method.
  vm::Builder b;
  auto loop = b.label();
  auto done = b.label();
  b.push(40);          // operand stack: [40]      — saved at monitorenter
  b.push(2);           // operand stack: [40 2]
  b.monitor_enter(0);  // §3.1.1: stack+locals snapshot taken here
  b.push(0).store(0);
  b.bind(loop);
  b.load(0).push(2000).cmp_lt();
  b.jz(done);
  b.load(0).put_field(0, 0);  // speculative stores, logged by the barrier
  b.load(0).push(1).add().store(0);
  b.jump(loop);
  b.bind(done);
  b.add();             // consumes the pre-entry operands: 40 + 2
  b.put_field(0, 1);   // o.f1 = 42
  b.monitor_exit();
  b.halt();
  const vm::Program prog = b.build();

  std::printf("low-priority bytecode (%zu instructions):\n",
              prog.code.size());
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    std::printf("  %2zu: %s\n", i, vm::to_string(prog.code[i]).c_str());
  }

  vm::VmResult lo;
  sched.spawn("lo-vm", 2, [&] { lo = vm::execute(machine, prog); });
  sched.spawn("hi", 8, [&] {
    sched.sleep_for(300);
    engine.synchronized(*machine.monitors[0], [&] {
      std::printf("\n[tick %llu] hi entered: o.f0 = %llu (partial loop "
                  "results revoked)\n",
                  static_cast<unsigned long long>(sched.now()),
                  static_cast<unsigned long long>(
                      machine.objects[0]->get_word(0)));
    });
  });
  sched.run();

  std::printf(
      "\nlo-vm: halted=%d, %llu instruction executions, %llu rollback(s)\n"
      "final heap: o.f0 = %llu, o.f1 = %llu (42 proves the operand stack\n"
      "was restored: the re-execution re-consumed the pre-entry 40 and 2)\n\n",
      lo.halted ? 1 : 0, static_cast<unsigned long long>(lo.instructions),
      static_cast<unsigned long long>(lo.rollbacks),
      static_cast<unsigned long long>(machine.objects[0]->get_word(0)),
      static_cast<unsigned long long>(machine.objects[0]->get_word(1)));
  core::print_engine_report(engine, std::cout);
  return (lo.halted && machine.objects[0]->get_word(1) == 42) ? 0 : 1;
}
