// native_threads: the pthreadrt extension — revocable locking for real
// std::thread, outside the green-thread VM.
//
// A low-priority logger batches records into a shared ring under a
// RevocableMutex; a high-priority alerting thread occasionally needs the
// same lock NOW.  With a plain mutex the alert waits out the whole batch;
// with the revocable mutex the batch is rolled back at the logger's next
// safepoint and the alert proceeds.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "pthreadrt/revocable_mutex.hpp"

int main() {
  using namespace rvk::pthreadrt;
  using Clock = std::chrono::steady_clock;

  RevocableMutex ring_lock("ring");
  constexpr int kRing = 64;
  std::vector<std::unique_ptr<TxCell<std::uint64_t>>> ring;
  for (int i = 0; i < kRing; ++i) {
    ring.push_back(std::make_unique<TxCell<std::uint64_t>>(ring_lock, 0));
  }
  TxCell<std::uint64_t> head(ring_lock, 0);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> alerts_served{0};
  std::atomic<std::int64_t> worst_alert_ns{0};
  int logger_rollbacks = 0;

  std::thread logger([&] {
    std::uint64_t record = 0;
    while (!stop.load()) {
      logger_rollbacks += ring_lock.run(2, [&](Section& s) {
        // A long batch: 4k records, safepoint-polled.
        const std::uint64_t base = s.read(head);
        for (int i = 0; i < 4000; ++i) {
          const std::uint64_t h = (base + i) % kRing;
          s.write(*ring[static_cast<std::size_t>(h)], record + i);
          s.safepoint();
        }
        s.write(head, (base + 4000) % kRing);
      });
      record += 4000;
    }
  });

  std::thread alerter([&] {
    for (int a = 0; a < 50; ++a) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const auto t0 = Clock::now();
      ring_lock.run(9, [&](Section& s) {
        (void)s.read(head);  // read a consistent ring head
      });
      const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - t0)
                          .count();
      if (dt > worst_alert_ns.load()) worst_alert_ns.store(dt);
      alerts_served.fetch_add(1);
    }
    stop.store(true);
  });

  alerter.join();
  logger.join();

  const MutexStats st = ring_lock.stats();
  std::printf(
      "native_threads: %llu alerts served, worst alert latency %.3f ms\n"
      "logger: %d rollbacks (%llu revocations requested, %llu commits)\n"
      "The revocable mutex preempted the logger's 4000-record batches at\n"
      "its safepoints; every alert saw a consistent ring state.\n",
      static_cast<unsigned long long>(alerts_served.load()),
      static_cast<double>(worst_alert_ns.load()) / 1e6, logger_rollbacks,
      static_cast<unsigned long long>(st.revocations_requested),
      static_cast<unsigned long long>(st.commits));
  return 0;
}
