// producer_consumer: wait/notify pipelines and the §2.2 wait rule.
//
// A bounded queue over the managed heap connects low-priority producers to
// a high-priority consumer.  Two behaviours of the revocation runtime show
// up here:
//
//  1. Sections that call Object.wait() become NON-revocable (§2.2): a
//     consumer parked in wait() can never be rolled back, because the
//     notification it consumed cannot be re-delivered.  The report at the
//     end counts those pins.
//  2. Producer sections that only notify() stay revocable — a rolled-back
//     notification is a legal spurious wakeup — so the high-priority
//     consumer can still preempt a mid-batch producer.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "heap/heap.hpp"
#include "rt/scheduler.hpp"

namespace {

constexpr int kQueueCapacity = 8;
constexpr int kItemsPerProducer = 60;
constexpr int kProducers = 3;

// A bounded FIFO stored in managed-heap slots so queue mutations are
// speculative inside synchronized sections.
struct BoundedQueue {
  rvk::heap::HeapArray<std::uint64_t>* ring;
  rvk::heap::HeapObject* ctl;  // slot 0 = head, 1 = tail, 2 = size

  std::uint64_t size() { return ctl->get<std::uint64_t>(2); }
  void push(std::uint64_t v) {
    const auto tail = ctl->get<std::uint64_t>(1);
    ring->set(static_cast<std::size_t>(tail % kQueueCapacity), v);
    ctl->set<std::uint64_t>(1, tail + 1);
    ctl->set<std::uint64_t>(2, size() + 1);
  }
  std::uint64_t pop() {
    const auto head = ctl->get<std::uint64_t>(0);
    const auto v = ring->get(static_cast<std::size_t>(head % kQueueCapacity));
    ctl->set<std::uint64_t>(0, head + 1);
    ctl->set<std::uint64_t>(2, size() - 1);
    return v;
  }
};

}  // namespace

int main() {
  using namespace rvk;
  rt::Scheduler sched;
  core::Engine engine(sched);
  heap::Heap heap;

  BoundedQueue q{heap.alloc_array<std::uint64_t>(kQueueCapacity),
                 heap.alloc("queue-control", 3)};
  core::RevocableMonitor* mon = engine.make_monitor("queue");

  std::uint64_t consumed = 0, sum = 0;
  int producers_done = 0;

  for (int p = 0; p < kProducers; ++p) {
    sched.spawn("producer-" + std::to_string(p), 2, [&, p] {
      SplitMix64 rng(0xFACADE + p);
      for (int i = 0; i < kItemsPerProducer; ++i) {
        const std::uint64_t item =
            static_cast<std::uint64_t>(p) * 1000 + static_cast<std::uint64_t>(i);
        engine.synchronized(*mon, [&] {
          while (q.size() == kQueueCapacity) {
            mon->wait();  // queue full: pins this section (§2.2)
          }
          q.push(item);
          // Simulate per-item bookkeeping: a burst of speculative work the
          // consumer may preempt.
          for (int w = 0; w < 300; ++w) sched.yield_point();
          mon->notify_all();
        });
        sched.sleep_for(rng.next_below(100));
      }
      engine.synchronized(*mon, [&] {
        ++producers_done;
        mon->notify_all();
      });
    });
  }

  sched.spawn("consumer", 9, [&] {
    for (;;) {
      bool stop = false;
      std::uint64_t item = 0;
      bool got = false;
      engine.synchronized(*mon, [&] {
        while (q.size() == 0 && producers_done < kProducers) {
          mon->wait();
        }
        if (q.size() > 0) {
          item = q.pop();
          got = true;
          mon->notify_all();
        } else {
          stop = true;
        }
      });
      if (got) {
        ++consumed;
        sum += item;
      }
      if (stop) break;
      sched.sleep_for(50);
    }
  });

  sched.run();

  std::printf("consumed %llu items (expected %d), checksum %llu\n\n",
              static_cast<unsigned long long>(consumed),
              kProducers * kItemsPerProducer,
              static_cast<unsigned long long>(sum));
  core::print_engine_report(engine, std::cout);
  std::cout << "\n";
  core::print_monitor_report(engine, std::cout);
  std::printf(
      "\nNote the pinned frames: every section that parked in wait() became\n"
      "non-revocable, while producers' notify-only bursts stayed revocable\n"
      "and were preempted by the high-priority consumer (rollbacks above).\n");
  return consumed == kProducers * kItemsPerProducer ? 0 : 1;
}
