// bank_audit: a realistic priority-inversion scenario.
//
// Low-priority batch workers continuously transfer money between accounts
// inside long synchronized sections over the whole ledger.  A high-priority
// auditor periodically needs a consistent snapshot of the total balance
// under the same monitor — exactly the "high-priority thread demands some
// level of guaranteed throughput" situation from the paper's introduction.
//
// With revocation, the auditor preempts whichever batch worker holds the
// ledger: the worker's partially applied transfers are rolled back (so the
// auditor's total is always exact) and re-executed afterwards.
//
// The program runs the same scenario on the "unmodified VM" (blocking
// monitor) and the revocation engine, and reports the auditor's worst-case
// and average snapshot latency under both.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "heap/heap.hpp"
#include "monitor/monitor.hpp"
#include "rt/scheduler.hpp"

namespace {

constexpr int kAccounts = 32;
constexpr std::uint64_t kInitialBalance = 1000;
constexpr int kAudits = 25;
constexpr int kTransfersPerBatch = 400;
constexpr int kBatchWorkers = 4;

struct Result {
  std::uint64_t worst_latency = 0;
  double avg_latency = 0;
  std::uint64_t rollbacks = 0;
  bool totals_always_consistent = true;
};

Result run(bool revocable) {
  using namespace rvk;
  rt::Scheduler sched;
  std::unique_ptr<core::Engine> engine;
  core::RevocableMonitor* rmon = nullptr;
  std::unique_ptr<monitor::BlockingMonitor> bmon;
  if (revocable) {
    engine = std::make_unique<core::Engine>(sched);
    rmon = engine->make_monitor("ledger");
  } else {
    bmon = std::make_unique<monitor::BlockingMonitor>("ledger");
  }

  heap::Heap heap;
  heap::HeapArray<std::uint64_t>* accounts =
      heap.alloc_array<std::uint64_t>(kAccounts);
  for (int i = 0; i < kAccounts; ++i) {
    accounts->set_unlogged(i, kInitialBalance);
  }

  bool auditor_done = false;
  Result result;

  // Batch workers: long transfer batches under the ledger monitor.
  for (int w = 0; w < kBatchWorkers; ++w) {
    sched.spawn("batch-" + std::to_string(w), 2, [&, w] {
      SplitMix64 rng(0xBA7C4 + w);
      while (!auditor_done) {
        const std::uint64_t batch_seed = rng.next();
        auto batch = [&] {
          SplitMix64 brng(batch_seed);
          for (int i = 0; i < kTransfersPerBatch; ++i) {
            const std::size_t from = brng.next_below(kAccounts);
            const std::size_t to = brng.next_below(kAccounts);
            const std::uint64_t amount = brng.next_below(10);
            const std::uint64_t have = accounts->get(from);
            if (have >= amount) {
              // Mid-batch the ledger total is transiently wrong — which is
              // why the auditor must never observe a partial batch.
              accounts->set(from, have - amount);
              sched.yield_point();
              accounts->set(to, accounts->get(to) + amount);
            }
            sched.yield_point();
          }
        };
        if (revocable) {
          engine->synchronized(*rmon, batch);
        } else {
          bmon->acquire();
          batch();
          bmon->release();
        }
        sched.sleep_for(rng.next_below(50));
      }
    });
  }

  // The auditor: high-priority consistent snapshots.
  sched.spawn("auditor", 9, [&] {
    std::uint64_t total_latency = 0;
    for (int a = 0; a < kAudits; ++a) {
      sched.sleep_for(200);
      const std::uint64_t t0 = sched.now();
      std::uint64_t total = 0;
      auto audit = [&] {
        total = 0;
        for (int i = 0; i < kAccounts; ++i) {
          total += accounts->get(i);
          sched.yield_point();
        }
      };
      if (revocable) {
        engine->synchronized(*rmon, audit);
      } else {
        bmon->acquire();
        audit();
        bmon->release();
      }
      const std::uint64_t latency = sched.now() - t0;
      total_latency += latency;
      result.worst_latency = std::max(result.worst_latency, latency);
      if (total != kAccounts * kInitialBalance) {
        result.totals_always_consistent = false;
      }
    }
    result.avg_latency = static_cast<double>(total_latency) / kAudits;
    auditor_done = true;
  });

  sched.run();
  if (engine) result.rollbacks = engine->stats().rollbacks_completed;
  return result;
}

}  // namespace

int main() {
  std::printf("bank_audit: %d accounts, %d batch workers, %d audits\n\n",
              kAccounts, kBatchWorkers, kAudits);
  const Result blocking = run(/*revocable=*/false);
  const Result revoking = run(/*revocable=*/true);

  std::printf("%-28s %15s %15s\n", "", "blocking VM", "revocable VM");
  std::printf("%-28s %15llu %15llu\n", "auditor worst latency (ticks)",
              static_cast<unsigned long long>(blocking.worst_latency),
              static_cast<unsigned long long>(revoking.worst_latency));
  std::printf("%-28s %15.1f %15.1f\n", "auditor avg latency (ticks)",
              blocking.avg_latency, revoking.avg_latency);
  std::printf("%-28s %15llu %15llu\n", "batch rollbacks",
              static_cast<unsigned long long>(blocking.rollbacks),
              static_cast<unsigned long long>(revoking.rollbacks));
  std::printf("%-28s %15s %15s\n", "audit totals consistent",
              blocking.totals_always_consistent ? "yes" : "NO",
              revoking.totals_always_consistent ? "yes" : "NO");
  std::printf(
      "\nThe revocable VM preempts batch workers at the auditor's arrival;\n"
      "their partial transfers are rolled back, so snapshots stay exact\n"
      "while worst-case latency drops by roughly the batch length.\n");
  return 0;
}
